"""Fault-tolerant, checkpointed execution of experiment campaigns.

The paper's headline tables come from thousands of independent seeded
runs; :func:`repro.experiments.parallel.run_many` executes them but a
single worker crash (OOM, preemption, a poison job) loses the whole
campaign.  This module subsumes ``run_many`` with a durable job
engine:

* every :class:`~repro.experiments.parallel.RunSpec` becomes a job
  whose result is persisted **atomically** (write to a temp file,
  ``fsync``, ``os.replace``) through a pluggable
  :class:`~repro.experiments.store.CheckpointStore`, so an interrupted
  campaign resumes from its checkpoints and completes byte-identical
  to an uninterrupted run — seeds come from the existing
  ``SeedSequence.spawn`` scheme, so resume never re-draws RNG state;
* each job runs in a supervised worker process with a per-job timeout,
  bounded retries with deterministic backoff, and quarantine of poison
  jobs (partial-result reporting instead of campaign abort);
* a campaign can be **sharded across hosts**: ``EngineConfig`` carries
  a ``shard_index/shard_count`` identity, jobs are partitioned by
  stable fingerprint hash (:func:`~repro.experiments.store.shard_of`),
  and with the shared-directory store each engine claims work through
  expiring leases — a SIGKILLed or hung shard simply stops renewing
  and a sibling adopts its jobs.  Separate per-shard directories are
  joined back with :func:`~repro.experiments.store.merge_campaigns`;
* a seedable fault-injection harness (:mod:`repro.faults`) can kill,
  hang, or corrupt chosen jobs — and kill whole shards or plant stale
  leases — so the chaos tests and CI prove the recovery paths are
  byte-exact.

Telemetry (when enabled) gains ``engine.resumed`` / ``engine.retries``
/ ``engine.timeouts`` / ``engine.quarantined`` counters (plus the
``engine.shard`` gauge and ``lease.claimed/expired/stolen`` from the
shared store) and the worker spans are folded into the parent session
exactly as ``run_many`` does; with telemetry off the engine path's
outputs are byte-identical to ``run_many`` under the same base seed.
"""

from __future__ import annotations

import contextlib
import dataclasses
import json
import multiprocessing
import os
import signal
import sys
import tempfile
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Set, Tuple

from .. import faults as faults_mod
from .. import obs
from ..core.result import ApproximationResult, SearchStats
from ..core.serialize import setting_from_dict, setting_to_dict
from ..core.settings import SettingSequence
from . import reporting
from .parallel import RunSpec
from .pool import DEFAULT_MEMO_CAPACITY
from .store import (
    CAMPAIGN_FILE as _CAMPAIGN_FILE,
    DEFAULT_LEASE_TTL,
    JOBS_DIR as _JOBS_DIR,
    QUARANTINE_DIR as _QUARANTINE_DIR,
    SCHEMA as _SCHEMA,
    CampaignError,
    CampaignMismatch,
    CheckpointStore,
    LocalStore,
    SharedDirStore,
    atomic_write_json,
    make_store,
    shard_indices,
    shard_of,
)

__all__ = [
    "EngineConfig",
    "Engine",
    "resolve_jobs",
    "CampaignError",
    "CampaignMismatch",
    "CampaignOutcome",
    "CampaignStatus",
    "JobFailure",
    "atomic_write_json",
    "backoff_seconds",
    "result_to_payload",
    "result_from_payload",
    "run_experiment_campaign",
    "resume_campaign",
    "campaign_status",
]

#: environment variable marking the process as one shard of a larger
#: campaign (``"i/n"``) — stamped into benchmark snapshot provenance
#: so the regression ratchet can reject partial-shard numbers
SHARD_ENV_VAR = "REPRO_SHARD"


def backoff_seconds(attempt: int, base: float) -> float:
    """Deterministic exponential backoff before retry ``attempt``.

    Attempt 0 (the first execution) never waits; retry ``a`` waits
    ``base * 2**(a - 1)`` seconds.  No jitter — two runs of the same
    campaign with the same fault plan retry on the same schedule.
    """
    if attempt <= 0 or base <= 0:
        return 0.0
    return base * (2.0 ** (attempt - 1))


def resolve_jobs(requested: Optional[int], job_count: Optional[int] = None) -> int:
    """Effective worker count for a campaign.

    ``requested=None`` defaults to ``os.cpu_count()``; with a known
    ``job_count`` the result is clamped to it (never start workers
    with nothing to do) and to at least 1.  Explicit requests below 1
    are rejected — the CLI surfaces that as a ``--jobs`` argument
    error before any work starts.
    """
    if requested is not None and requested < 1:
        raise ValueError("jobs must be >= 1")
    effective = requested if requested is not None else (os.cpu_count() or 1)
    if job_count is not None:
        effective = min(effective, max(1, job_count))
    return max(1, effective)


# ======================================================================
# Job payloads: ApproximationResult <-> durable JSON
# ======================================================================
def result_to_payload(spec: RunSpec, result: ApproximationResult) -> Dict[str, Any]:
    """Serialise one job's result for its checkpoint file."""
    return {
        "schema": _SCHEMA,
        "fingerprint": spec.fingerprint(),
        "label": spec.label,
        "algorithm": result.algorithm,
        "benchmark": spec.name,
        "med": result.med,
        "elapsed_seconds": result.elapsed_seconds,
        "stats": dataclasses.asdict(result.stats),
        "round_history": list(result.round_history),
        "settings": [setting_to_dict(s) for s in result.sequence.settings],
        "seed": spec.seed_info(),
    }


def result_from_payload(
    spec: RunSpec, payload: Dict[str, Any]
) -> ApproximationResult:
    """Reconstruct a job result, validating it belongs to ``spec``."""
    if payload.get("schema") != _SCHEMA:
        raise CampaignError(f"unsupported job payload schema {payload.get('schema')!r}")
    if payload.get("fingerprint") != spec.fingerprint():
        raise CampaignMismatch(
            f"job payload fingerprint {payload.get('fingerprint')!r} does not "
            f"match spec {spec.label} ({spec.fingerprint()})"
        )
    settings = [setting_from_dict(s) for s in payload["settings"]]
    sequence = SettingSequence(spec.n_outputs, settings)
    stats_fields = {f.name for f in dataclasses.fields(SearchStats)}
    stats = SearchStats(
        **{k: v for k, v in payload.get("stats", {}).items() if k in stats_fields}
    )
    return ApproximationResult(
        algorithm=payload["algorithm"],
        target=spec.target_function(),
        sequence=sequence,
        med=float(payload["med"]),
        elapsed_seconds=float(payload["elapsed_seconds"]),
        stats=stats,
        round_history=[float(v) for v in payload.get("round_history", [])],
    )


# ======================================================================
# Worker process entry point
# ======================================================================
def _job_worker(
    spec: RunSpec,
    path: str,
    fault: Optional[faults_mod.Fault],
    capture_telemetry: bool,
) -> None:
    """Execute one job and persist its payload atomically.

    Runs in a child process.  The worker itself writes the checkpoint
    file, so a worker killed at *any* point leaves either no file or a
    complete one — the parent decides success purely by payload
    validity.  Injected crash/hang faults fire before the computation;
    an injected corruption replaces the payload with garbage (the
    parent must detect and retry it).
    """
    faults_mod.inject_worker_fault(fault)
    sink = obs.MemorySink()
    with obs.session(sink):
        result = spec.execute()
    if fault is not None and fault.kind == "corrupt":
        with open(path, "w") as handle:
            handle.write('{"schema": 1, "med": 0.0, "settings": [{"trunc')
        return
    payload = result_to_payload(spec, result)
    if capture_telemetry:
        payload["telemetry"] = sink.records
    atomic_write_json(path, payload)


# ======================================================================
# Engine configuration and outcomes
# ======================================================================
@dataclass(frozen=True)
class EngineConfig:
    """Supervision knobs of the checkpointed engine."""

    #: concurrent worker processes
    n_jobs: int = 1
    #: per-job wall-clock timeout in seconds (None = unlimited)
    job_timeout: Optional[float] = None
    #: retries after the first failed attempt before quarantine
    max_retries: int = 2
    #: base of the deterministic exponential retry backoff (seconds)
    backoff_base: float = 0.0
    #: supervision poll interval (seconds)
    poll_interval: float = 0.02
    #: execution backend: "spawn" = one fault-isolated process per job,
    #: "pool" = persistent warm workers over shared memory (see
    #: repro.experiments.pool) — outputs are byte-identical either way
    backend: str = "spawn"
    #: directory holding the cross-campaign memo snapshot (pool only)
    memo_dir: Optional[str] = None
    #: bound on campaign-shared OptForPart memo entries (pool only)
    memo_capacity: int = DEFAULT_MEMO_CAPACITY
    #: serve live /metrics + /healthz on this port while the campaign
    #: runs (0 = ephemeral port; None = no server).  Read-only: the
    #: endpoint never changes campaign results.
    metrics_port: Optional[int] = None
    #: checkpoint store: "local" = single-writer directory, "shared" =
    #: concurrent-writer directory with lease-based claiming (see
    #: repro.experiments.store)
    store: str = "local"
    #: this engine's shard identity (both or neither of index/count);
    #: jobs are partitioned by stable fingerprint hash, so membership
    #: is byte-identical on every host regardless of count
    shard_index: Optional[int] = None
    shard_count: Optional[int] = None
    #: seconds a shared-store lease stays valid without a heartbeat
    lease_ttl: float = DEFAULT_LEASE_TTL
    #: with a shared store, pick up other shards' unclaimed/expired
    #: jobs once this shard's own partition is done (work stealing)
    adopt: bool = True

    def __post_init__(self) -> None:
        if self.n_jobs < 1:
            raise ValueError("n_jobs must be >= 1")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.job_timeout is not None and self.job_timeout <= 0:
            raise ValueError("job_timeout must be positive")
        if self.backend not in ("spawn", "pool"):
            raise ValueError(
                f"unknown backend {self.backend!r}; choose spawn or pool"
            )
        if self.memo_dir is not None and self.backend != "pool":
            raise ValueError("memo_dir requires the pool backend")
        if self.memo_capacity < 1:
            raise ValueError("memo_capacity must be >= 1")
        if self.metrics_port is not None and not (
            0 <= self.metrics_port <= 65535
        ):
            raise ValueError("metrics_port must be in [0, 65535]")
        if self.store not in ("local", "shared"):
            raise ValueError(
                f"unknown store {self.store!r}; choose local or shared"
            )
        if (self.shard_index is None) != (self.shard_count is None):
            raise ValueError(
                "shard_index and shard_count must be set together "
                "(e.g. --shard 2/4)"
            )
        if self.shard_count is not None:
            if self.shard_count < 1:
                raise ValueError("shard_count must be >= 1")
            if not (0 <= self.shard_index < self.shard_count):
                raise ValueError(
                    f"shard_index must be in [0, {self.shard_count}); "
                    f"got {self.shard_index}"
                )
        if self.lease_ttl <= 0:
            raise ValueError("lease_ttl must be positive")

    @property
    def shard_label(self) -> Optional[str]:
        """``"i/n"`` when sharded, else ``None``."""
        if self.shard_index is None:
            return None
        return f"{self.shard_index}/{self.shard_count}"


@dataclass
class JobFailure:
    """Why one job attempt (or a whole job) failed."""

    index: int
    label: str
    reason: str
    attempts: int
    detail: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass
class CampaignOutcome:
    """What a campaign run produced.

    ``results`` is in spec order; quarantined jobs are ``None`` —
    partial-result reporting instead of campaign abort.  A strictly
    partitioned shard run leaves other shards' jobs ``None`` too and
    counts them in ``skipped``; merge the shard directories to get the
    full campaign.
    """

    results: List[Optional[ApproximationResult]]
    resumed: int = 0
    executed: int = 0
    retries: int = 0
    timeouts: int = 0
    skipped: int = 0
    quarantined: List[JobFailure] = field(default_factory=list)

    @property
    def complete(self) -> bool:
        return all(result is not None for result in self.results)

    def require_complete(self) -> List[ApproximationResult]:
        if not self.complete:
            if self.quarantined:
                labels = ", ".join(f.label for f in self.quarantined)
                raise CampaignError(
                    f"campaign incomplete: {len(self.quarantined)} job(s) "
                    f"quarantined ({labels})"
                )
            raise CampaignError(
                f"campaign incomplete: {self.skipped} job(s) belong to "
                "other shards — merge the shard directories first"
            )
        return list(self.results)  # type: ignore[arg-type]


# ======================================================================
# The engine
# ======================================================================
class _Running:
    __slots__ = ("process", "deadline", "attempt")

    def __init__(self, process, deadline: Optional[float], attempt: int) -> None:
        self.process = process
        self.deadline = deadline
        self.attempt = attempt


class _JobQueue:
    """Claim-aware scheduling state shared by both supervision backends.

    ``pending`` holds this shard's own jobs (retries re-enter here);
    ``deferred`` holds jobs whose lease claim failed — a live sibling
    holds them — keyed to the wall time of the next claim attempt;
    ``foreign`` holds other shards' jobs, only drawn once the own
    partition has drained.
    """

    def __init__(
        self,
        owned: Sequence[int],
        foreign: Sequence[int],
        retry_delay: float,
    ) -> None:
        self.pending: deque = deque(owned)
        self.foreign: deque = deque(foreign)
        self.retry_delay = retry_delay
        self.deferred: Dict[int, float] = {}

    def defer(self, index: int) -> None:
        self.deferred[index] = time.time() + self.retry_delay

    def requeue(self, index: int) -> None:
        self.pending.append(index)

    def next_index(self) -> Optional[int]:
        if self.pending:
            return self.pending.popleft()
        now = time.time()
        due = [index for index, when in self.deferred.items() if when <= now]
        if due:
            index = min(due)
            del self.deferred[index]
            return index
        if self.foreign:
            return self.foreign.popleft()
        return None

    def __bool__(self) -> bool:
        return bool(self.pending or self.deferred or self.foreign)


class Engine:
    """Checkpointed, supervised executor of :class:`RunSpec` campaigns.

    With ``campaign_dir=None`` the engine still supervises workers
    (timeouts, retries, quarantine) but checkpoints into a temporary
    directory discarded after the run.  With a directory, completed
    jobs are durable: a second ``run`` over the same specs skips them
    (``engine.resumed``) and an interrupted campaign picks up where it
    stopped.  With a shard identity the engine runs its own partition
    of the job list; on a shared store it then adopts siblings' jobs
    whose leases are absent or expired.
    """

    def __init__(
        self,
        campaign_dir: Optional[str] = None,
        config: Optional[EngineConfig] = None,
        faults: Optional[faults_mod.FaultPlan] = None,
    ) -> None:
        self.campaign_dir = campaign_dir
        self.config = config or EngineConfig()
        self.faults = faults if faults is not None else faults_mod.from_env()
        #: recorded in campaign.json so ``repro resume`` can rebuild specs
        self.invocation: Optional[Dict[str, Any]] = None
        #: outcome of the most recent :meth:`run`
        self.last_outcome: Optional[CampaignOutcome] = None
        #: the checkpoint store of the in-flight (or last) run
        self.store: Optional[CheckpointStore] = None
        #: live metrics hub while a --metrics-port run is in flight
        self._hub = None
        #: (host, port) of the running metrics server, if any
        self.metrics_address: Optional[Tuple[str, int]] = None
        self._foreign: Set[int] = set()
        self._claimed: Set[int] = set()
        self._lease_faults_fired: Set[int] = set()

    # -- campaign layout ----------------------------------------------
    def _init_campaign(self, specs: Sequence[RunSpec]) -> None:
        """Create or validate the campaign manifest for these specs."""
        if self.store is None:
            assert self.campaign_dir is not None
            self.store = make_store(
                self.campaign_dir,
                self.config.store,
                lease_ttl=self.config.lease_ttl,
            )
            self.store.prepare()
        jobs = [
            {
                "id": f"job-{index:05d}",
                "label": spec.label,
                "fingerprint": spec.fingerprint(),
                "benchmark": spec.name,
                "algorithm": spec.algorithm,
            }
            for index, spec in enumerate(specs)
        ]
        existing = self.store.read_manifest()
        if existing is not None:
            recorded = [job["fingerprint"] for job in existing.get("jobs", [])]
            ours = [job["fingerprint"] for job in jobs]
            if recorded != ours:
                raise CampaignMismatch(
                    f"{self.campaign_dir} holds a different campaign "
                    f"({len(recorded)} job(s) recorded, {len(ours)} requested; "
                    "fingerprints differ)"
                )
            return
        shard: Optional[Dict[str, Any]] = None
        if self.config.shard_count is not None:
            # A shared directory is written by every shard (whoever
            # inits first wins the race), so it records no single
            # index; a per-shard local directory records its own.
            shard = {
                "index": (
                    None
                    if self.store.supports_leases
                    else self.config.shard_index
                ),
                "count": self.config.shard_count,
            }
        manifest = {
            "schema": _SCHEMA,
            "created": time.time(),
            "engine": dataclasses.asdict(self.config),
            "invocation": self.invocation,
            "shard": shard,
            "jobs": jobs,
        }
        self.store.write_manifest(manifest)

    # -- the run loop --------------------------------------------------
    def run(self, specs: Sequence[RunSpec]) -> CampaignOutcome:
        """Execute the campaign, resuming any persisted jobs."""
        specs = list(specs)
        outcome = CampaignOutcome(results=[None] * len(specs))
        if not specs:
            self.last_outcome = outcome
            return outcome
        config = self.config
        self._foreign = set()
        self._claimed = set()
        self._lease_faults_fired = set()
        try:
            with contextlib.ExitStack() as stack:
                self._start_metrics(stack, len(specs))
                if config.shard_label is not None:
                    os.environ[SHARD_ENV_VAR] = config.shard_label
                    stack.callback(os.environ.pop, SHARD_ENV_VAR, None)
                if self.campaign_dir is not None:
                    self.store = make_store(
                        self.campaign_dir,
                        config.store,
                        lease_ttl=config.lease_ttl,
                    )
                    self.store.prepare()
                    self._init_campaign(specs)
                    self._execute(specs, outcome)
                else:
                    with tempfile.TemporaryDirectory(
                        prefix="repro-engine-"
                    ) as tmp_dir:
                        self.store = LocalStore(tmp_dir)
                        self.store.prepare()
                        self._execute(specs, outcome)
        finally:
            self._hub = None
        self.last_outcome = outcome
        return outcome

    def _start_metrics(self, stack: contextlib.ExitStack, total: int) -> None:
        """Serve a live /metrics + /healthz view while the campaign runs.

        Only active with ``config.metrics_port``.  The endpoint is
        strictly read-only; the one observable side effect is that a
        telemetry session (with a :class:`~repro.obs.NullSink`) is
        opened when none is active, so live counters exist to serve —
        results stay byte-identical either way (the telemetry on/off
        differential tests prove it).
        """
        port = self.config.metrics_port
        if port is None:
            return
        from ..obs import exposition

        if obs.current() is None:
            stack.enter_context(obs.session(obs.NullSink()))
        hub = exposition.MetricsHub(telemetry=obs.current())
        invocation = self.invocation or {}
        fields: Dict[str, Any] = dict(
            state="running",
            total=total,
            backend=self.config.backend,
            experiment=invocation.get("experiment"),
            scale=invocation.get("scale"),
        )
        if self.config.shard_label is not None:
            fields["shard"] = self.config.shard_label
            fields["store"] = self.config.store
        hub.campaign_update(**fields)
        server = exposition.MetricsServer(hub, port=port)
        server.start()
        self.metrics_address = (server.host, server.port)
        print(f"[repro] live metrics: {server.url}/metrics", file=sys.stderr)
        stack.callback(server.stop)
        stack.callback(lambda: hub.campaign_update(state="done", running=0))
        stack.enter_context(exposition.activated(hub))
        self._hub = hub

    def _sync_hub(
        self, outcome: CampaignOutcome, running: Optional[int] = None
    ) -> None:
        """Publish campaign progress to the live hub, if one is active."""
        hub = self._hub
        if hub is None:
            return
        fields: Dict[str, Any] = {
            "done": outcome.resumed + outcome.executed,
            "resumed": outcome.resumed,
            "retried": outcome.retries,
            "timeouts": outcome.timeouts,
            "skipped": outcome.skipped,
            "quarantined": len(outcome.quarantined),
        }
        if running is not None:
            fields["running"] = running
        hub.campaign_update(**fields)

    def _execute(self, specs: List[RunSpec], outcome: CampaignOutcome) -> None:
        assert self.store is not None
        telemetry = obs.current()
        config = self.config
        with obs.span(
            "engine.run",
            jobs=len(specs),
            n_jobs=config.n_jobs,
            backend=config.backend,
            shard=config.shard_label,
        ):
            if config.shard_index is not None:
                obs.gauge("engine.shard", config.shard_index)
                obs.gauge("engine.shard_count", config.shard_count)
            if config.shard_count is not None and config.shard_count > 1:
                fingerprints = [spec.fingerprint() for spec in specs]
                owned_set = set(
                    shard_indices(
                        fingerprints, config.shard_index, config.shard_count
                    )
                )
            else:
                owned_set = set(range(len(specs)))
            adopt_foreign = self.store.supports_leases and config.adopt
            owned: List[int] = []
            foreign: List[int] = []
            for index, spec in enumerate(specs):
                if telemetry is not None:
                    telemetry.event("run.seeded", **spec.seed_info())
                if self._try_resume(spec, index, outcome):
                    continue
                if index in owned_set:
                    owned.append(index)
                elif adopt_foreign:
                    foreign.append(index)
                else:
                    outcome.skipped += 1
                    obs.incr("engine.skipped")
            self._foreign = set(foreign)
            retry_delay = config.poll_interval
            if self.store.supports_leases:
                retry_delay = max(
                    config.poll_interval, self.store.lease_ttl / 4.0
                )
            queue = _JobQueue(owned, foreign, retry_delay)
            if config.backend == "pool":
                self._supervise_pool(specs, queue, outcome)
            else:
                self._supervise(specs, queue, outcome)

    def _try_resume(
        self, spec: RunSpec, index: int, outcome: CampaignOutcome
    ) -> bool:
        """Adopt a persisted checkpoint for this job, if one is valid."""
        assert self.store is not None
        try:
            payload = self.store.read_job(index)
        except (ValueError, OSError):
            # Torn or stale checkpoint (should be impossible with atomic
            # writes, but e.g. an injected corruption survives a kill):
            # discard and re-run the job.
            self.store.discard_job(index)
            return False
        if payload is None:
            return False
        try:
            result = result_from_payload(spec, payload)
        except CampaignMismatch:
            raise
        except (ValueError, KeyError, TypeError):
            self.store.discard_job(index)
            return False
        outcome.results[index] = result
        outcome.resumed += 1
        obs.incr("engine.resumed")
        obs.observe("run.med", result.med)
        obs.event(
            "engine.job_resumed", job=index, label=spec.label, med=result.med
        )
        self._sync_hub(outcome)
        return True

    def _adopt_quarantine(
        self, specs: List[RunSpec], index: int, outcome: CampaignOutcome
    ) -> bool:
        """Adopt a sibling shard's quarantine record for a foreign job."""
        assert self.store is not None
        path = self.store.quarantine_path(index)
        if not os.path.exists(path):
            return False
        try:
            with open(path) as handle:
                record = json.load(handle)
        except (OSError, ValueError):
            return False
        failure = JobFailure(
            index=index,
            label=record.get("label", specs[index].label),
            reason=record.get("reason", "quarantined-by-sibling"),
            attempts=int(record.get("attempts", 0) or 0),
            detail=record.get("detail", ""),
        )
        outcome.quarantined.append(failure)
        obs.incr("engine.quarantine_adopted")
        obs.event(
            "engine.quarantine_adopted", job=index, label=failure.label
        )
        self._sync_hub(outcome)
        return True

    # -- shared supervision helpers (both backends) --------------------
    def _admit(
        self,
        specs: List[RunSpec],
        index: int,
        outcome: CampaignOutcome,
        queue: _JobQueue,
        telemetry,
    ) -> bool:
        """Resolve a job without running it if possible; claim otherwise.

        Returns True when the caller should launch a worker: the job
        has no checkpoint, no (foreign) quarantine record, and this
        engine now holds its claim.  A claim lost to a live sibling
        re-enters the queue's deferred set — by its next attempt the
        sibling has either checkpointed the job (we adopt it) or died
        (its lease expires and we steal it).
        """
        assert self.store is not None
        if outcome.results[index] is not None:
            return False
        if self._try_resume(specs[index], index, outcome):
            return False
        if index in self._foreign and self._adopt_quarantine(
            specs, index, outcome
        ):
            return False
        fault = self.faults.lease_fault(index)
        if fault is not None and index not in self._lease_faults_fired:
            self._lease_faults_fired.add(index)
            obs.incr("faults.injected")
            obs.event("faults.lease_injected", job=index, kind=fault.kind)
            self.store.plant_stale_lease(index)
        if not self.store.try_claim(index):
            queue.defer(index)
            return False
        if index not in self._claimed:
            self._claimed.add(index)
            kill = self.faults.shard_kill(
                self.config.shard_index, len(self._claimed)
            )
            if kill is not None:
                # Injected shard death: die the hard way right after
                # claiming, leaving a stale lease and no checkpoint —
                # the textbook straggler a sibling must reclaim.
                obs.incr("faults.injected")
                if telemetry is not None:
                    telemetry.flush()
                os.kill(os.getpid(), signal.SIGKILL)
        return True

    def _prepare_attempt(self, index: int, attempt: int):
        """Backoff sleep + fault-plan lookup before (re)starting a job."""
        delay = backoff_seconds(attempt, self.config.backoff_base)
        if delay:
            time.sleep(delay)
        fault = self.faults.worker_fault(index, attempt)
        if fault is not None:
            obs.incr("faults.injected")
            obs.event(
                "faults.worker_injected",
                job=index,
                kind=fault.kind,
                attempt=attempt,
            )
        return fault

    def _fail_job(
        self,
        specs: List[RunSpec],
        attempts: Dict[int, int],
        queue: _JobQueue,
        outcome: CampaignOutcome,
        index: int,
        reason: str,
        detail: str = "",
    ) -> None:
        """Record a failed attempt: retry (bounded) or quarantine."""
        assert self.store is not None
        attempts[index] = attempts.get(index, 0) + 1
        self.store.discard_job(index)
        if attempts[index] <= self.config.max_retries:
            outcome.retries += 1
            obs.incr("engine.retries")
            obs.event(
                "engine.retry",
                job=index,
                label=specs[index].label,
                attempt=attempts[index],
                reason=reason,
            )
            # The lease is kept across retries — the next launch
            # refreshes it in place.
            queue.requeue(index)
            self._sync_hub(outcome)
            return
        failure = JobFailure(
            index=index,
            label=specs[index].label,
            reason=reason,
            attempts=attempts[index],
            detail=detail,
        )
        outcome.quarantined.append(failure)
        obs.incr("engine.quarantined")
        obs.event(
            "engine.quarantine", job=index, label=failure.label, reason=reason
        )
        self.store.write_quarantine(index, failure.to_dict())
        self.store.release(index)
        self._sync_hub(outcome)

    def _finish_job(
        self,
        specs: List[RunSpec],
        attempts: Dict[int, int],
        queue: _JobQueue,
        outcome: CampaignOutcome,
        telemetry,
        index: int,
        attempt: int,
    ) -> None:
        """Validate and adopt a persisted checkpoint for a finished job.

        Success is decided purely by payload validity on disk — both
        backends persist before adopting, so a crash at any point
        leaves a resumable campaign.
        """
        assert self.store is not None
        try:
            payload = self.store.read_job(index)
            if payload is None:
                raise ValueError("checkpoint missing after worker exit")
            result = result_from_payload(specs[index], payload)
        except (ValueError, KeyError, TypeError, OSError) as exc:
            self._fail_job(
                specs,
                attempts,
                queue,
                outcome,
                index,
                "corrupt-payload",
                detail=str(exc),
            )
            return
        outcome.results[index] = result
        outcome.executed += 1
        obs.incr("engine.jobs")
        obs.observe("engine.job_seconds", result.elapsed_seconds)
        obs.observe("run.med", result.med)
        if telemetry is not None and isinstance(payload.get("telemetry"), list):
            telemetry.absorb(payload["telemetry"], worker=index)
        self._sync_hub(outcome)
        obs.event(
            "engine.job_completed",
            job=index,
            label=specs[index].label,
            attempt=attempt,
            med=result.med,
            elapsed=result.elapsed_seconds,
        )
        fault = self.faults.engine_fault(index)
        if fault is not None:
            # Injected engine death: flush what we have, then die the
            # hard way (SIGKILL) exactly as a crashed orchestrator
            # would — the resume path must make this invisible.  The
            # lease is deliberately not released: a dead engine
            # wouldn't have, either.
            obs.incr("faults.injected")
            if telemetry is not None:
                telemetry.flush()
            os.kill(os.getpid(), signal.SIGKILL)
        self.store.release(index)

    def _supervise(
        self,
        specs: List[RunSpec],
        queue: _JobQueue,
        outcome: CampaignOutcome,
    ) -> None:
        """Per-job-spawn supervision loop with timeout and retry."""
        config = self.config
        context = multiprocessing.get_context(
            "fork"
            if "fork" in multiprocessing.get_all_start_methods()
            else None
        )
        telemetry = obs.current()
        attempts: Dict[int, int] = {}
        running: Dict[int, _Running] = {}

        def launch(index: int) -> None:
            attempt = attempts.get(index, 0)
            fault = self._prepare_attempt(index, attempt)
            path = self.store.job_path(index)
            process = context.Process(
                target=_job_worker,
                args=(specs[index], path, fault, telemetry is not None),
            )
            process.start()
            deadline = (
                time.monotonic() + config.job_timeout
                if config.job_timeout is not None
                else None
            )
            running[index] = _Running(process, deadline, attempt)

        def fail(index: int, reason: str, detail: str = "") -> None:
            self._fail_job(
                specs, attempts, queue, outcome, index, reason, detail
            )

        try:
            while queue or running:
                while len(running) < config.n_jobs:
                    index = queue.next_index()
                    if index is None:
                        break
                    if self._admit(specs, index, outcome, queue, telemetry):
                        launch(index)
                self.store.renew_held()
                self._sync_hub(outcome, running=len(running))
                progressed = False
                for index in list(running):
                    slot = running[index]
                    process = slot.process
                    if process.is_alive():
                        if (
                            slot.deadline is not None
                            and time.monotonic() > slot.deadline
                        ):
                            process.kill()
                            process.join()
                            process.close()
                            del running[index]
                            outcome.timeouts += 1
                            obs.incr("engine.timeouts")
                            fail(
                                index,
                                "timeout",
                                detail=f"exceeded {config.job_timeout}s",
                            )
                            progressed = True
                        continue
                    process.join()
                    exitcode = process.exitcode
                    process.close()
                    del running[index]
                    progressed = True
                    if exitcode == 0:
                        self._finish_job(
                            specs,
                            attempts,
                            queue,
                            outcome,
                            telemetry,
                            index,
                            slot.attempt,
                        )
                    else:
                        fail(index, f"worker-exit:{exitcode}")
                if not progressed and (running or queue):
                    time.sleep(config.poll_interval)
        finally:
            self.store.release_all()

    def _supervise_pool(
        self,
        specs: List[RunSpec],
        queue: _JobQueue,
        outcome: CampaignOutcome,
    ) -> None:
        """Warm-pool supervision: same retry/timeout/quarantine semantics.

        Workers ship payloads over their result pipe; the parent writes
        each checkpoint atomically and then adopts it through the same
        read-back path as the spawn backend, so checkpoint contents and
        campaign results are byte-identical across backends.  A timed
        out or crashed worker is killed and replaced (the pool restarts
        it); its job is retried like any other failure.
        """
        from .pool import WorkerPool

        config = self.config
        telemetry = obs.current()
        attempts: Dict[int, int] = {}
        running: Dict[int, Optional[float]] = {}  # index -> deadline

        def fail(index: int, reason: str, detail: str = "") -> None:
            self._fail_job(
                specs, attempts, queue, outcome, index, reason, detail
            )

        backlog = len(queue.pending) + len(queue.foreign)
        pool = WorkerPool(
            min(config.n_jobs, max(1, backlog)),
            memo_capacity=config.memo_capacity,
            memo_dir=config.memo_dir,
            capture_telemetry=telemetry is not None,
            # stream mid-job counter/histogram snapshots only when a
            # live metrics hub is consuming them
            metrics_interval=0.2 if self._hub is not None else None,
        )
        try:
            while queue or running:
                while pool.has_idle():
                    index = queue.next_index()
                    if index is None:
                        break
                    if not self._admit(specs, index, outcome, queue, telemetry):
                        continue
                    attempt = attempts.get(index, 0)
                    fault = self._prepare_attempt(index, attempt)
                    pool.submit(index, specs[index], attempt, fault)
                    running[index] = (
                        time.monotonic() + config.job_timeout
                        if config.job_timeout is not None
                        else None
                    )
                self.store.renew_held()
                self._sync_hub(outcome, running=len(running))
                for event in pool.wait(config.poll_interval):
                    running.pop(event.index, None)
                    if event.kind == "ok":
                        if event.raw is not None:
                            # injected corruption: persist the same
                            # garbage the spawn worker writes
                            self.store.write_job_raw(event.index, event.raw)
                        else:
                            self.store.write_job(event.index, event.payload)
                        self._finish_job(
                            specs,
                            attempts,
                            queue,
                            outcome,
                            telemetry,
                            event.index,
                            event.attempt,
                        )
                    elif event.kind == "error":
                        fail(event.index, "worker-error", event.detail)
                    else:
                        fail(event.index, f"worker-exit:{event.exitcode}")
                now = time.monotonic()
                for index, deadline in list(running.items()):
                    if deadline is not None and now > deadline:
                        pool.kill_job(index)
                        del running[index]
                        outcome.timeouts += 1
                        obs.incr("engine.timeouts")
                        fail(
                            index,
                            "timeout",
                            detail=f"exceeded {config.job_timeout}s",
                        )
        finally:
            pool.close()
            self.store.release_all()


# ======================================================================
# Experiment campaign orchestration (CLI `run` / `resume` / `status`)
# ======================================================================
_EXPERIMENTS = ("table2", "fig5")


def _run_experiment(experiment: str, scale, base_seed: int, engine: Engine):
    from .fig5 import run_fig5
    from .table2 import run_table2

    if experiment == "table2":
        return run_table2(scale, base_seed=base_seed, engine=engine)
    if experiment == "fig5":
        return run_fig5(scale, base_seed=base_seed, engine=engine)
    raise CampaignError(
        f"unknown experiment {experiment!r}; choose from {_EXPERIMENTS}"
    )


def run_experiment_campaign(
    experiment: str,
    scale,
    base_seed: int = 0,
    campaign_dir: Optional[str] = None,
    config: Optional[EngineConfig] = None,
    faults: Optional[faults_mod.FaultPlan] = None,
) -> Tuple[Any, CampaignOutcome]:
    """Run a paper experiment as a checkpointed campaign.

    ``scale`` is an :class:`~repro.experiments.runner.ExperimentScale`
    or a registered scale name.  Returns the experiment result object
    and the engine outcome (resume/retry/quarantine accounting).
    """
    from .runner import ExperimentScale

    if isinstance(scale, str):
        scale = ExperimentScale.by_name(scale)
    engine = Engine(campaign_dir, config, faults)
    engine.invocation = {
        "experiment": experiment,
        "scale": scale.name,
        "base_seed": base_seed,
    }
    result = _run_experiment(experiment, scale, base_seed, engine)
    assert engine.last_outcome is not None
    return result, engine.last_outcome


def _load_manifest(campaign_dir: str) -> Dict[str, Any]:
    manifest_path = os.path.join(campaign_dir, _CAMPAIGN_FILE)
    if not os.path.exists(manifest_path):
        raise CampaignError(f"no campaign found at {campaign_dir}")
    with open(manifest_path) as handle:
        return json.load(handle)


def resume_campaign(
    campaign_dir: str,
    config: Optional[EngineConfig] = None,
    faults: Optional[faults_mod.FaultPlan] = None,
) -> Tuple[Any, CampaignOutcome]:
    """Resume an interrupted campaign from its checkpoint directory.

    Rebuilds the spec list from the invocation recorded in
    ``campaign.json``; completed jobs are adopted from their checkpoint
    files (never re-executed), the rest run to completion.  A shard
    directory resumes as that shard (identity comes from the manifest
    unless the caller's config already carries one), and a shared
    directory resumes with the shared store.
    """
    manifest = _load_manifest(campaign_dir)
    invocation = manifest.get("invocation")
    if not invocation:
        raise CampaignError(
            f"{campaign_dir} records no invocation; it was not created by "
            "`repro run` — resume it by re-running the original engine call"
        )
    config = config or EngineConfig()
    recorded_engine = manifest.get("engine") or {}
    if recorded_engine.get("store") == "shared" and config.store == "local":
        config = dataclasses.replace(config, store="shared")
    shard = manifest.get("shard") or {}
    if (
        config.shard_index is None
        and shard.get("index") is not None
        and shard.get("count")
    ):
        config = dataclasses.replace(
            config,
            shard_index=int(shard["index"]),
            shard_count=int(shard["count"]),
        )
    return run_experiment_campaign(
        invocation["experiment"],
        invocation["scale"],
        int(invocation.get("base_seed") or 0),
        campaign_dir,
        config,
        faults,
    )


@dataclass
class CampaignStatus:
    """Snapshot of a checkpoint directory's progress."""

    campaign_dir: str
    invocation: Optional[Dict[str, Any]]
    total: int
    shard: Optional[Dict[str, Any]] = None
    done: List[str] = field(default_factory=list)
    running: List[str] = field(default_factory=list)
    pending: List[str] = field(default_factory=list)
    quarantined: List[Dict[str, Any]] = field(default_factory=list)
    #: per-shard progress rows ({"shard", "done", "total", "here"})
    #: when the manifest records a shard count > 1
    per_shard: List[Dict[str, Any]] = field(default_factory=list)

    def render(self) -> str:
        header = f"campaign {self.campaign_dir}"
        if self.invocation:
            header += (
                f" — {self.invocation.get('experiment')}"
                f" (scale={self.invocation.get('scale')},"
                f" seed={self.invocation.get('base_seed')})"
            )
        if self.shard and self.shard.get("count"):
            index = self.shard.get("index")
            where = "shared dir" if index is None else f"shard {index}"
            header += f" [{where} of {self.shard['count']}]"
        rows = [
            ["done", len(self.done)],
            ["running", len(self.running)],
            ["pending", len(self.pending)],
            ["quarantined", len(self.quarantined)],
            ["total", self.total],
        ]
        lines = [reporting.format_table(["state", "jobs"], rows, title=header)]
        for row in self.per_shard:
            marker = "  <- this directory" if row.get("here") else ""
            lines.append(
                f"  shard {row['shard']}: {row['done']}/{row['total']} "
                f"done{marker}"
            )
        for failure in self.quarantined:
            lines.append(
                f"  quarantined {failure.get('label', '?')}: "
                f"{failure.get('reason', '?')} "
                f"after {failure.get('attempts', '?')} attempt(s)"
            )
        return "\n".join(lines)


def campaign_status(campaign_dir: str) -> CampaignStatus:
    """Inspect a checkpoint directory without executing anything.

    A job counts as *running* only while a live (unexpired) lease
    covers it; a leased-but-unclaimed job — its holder died and the
    lease expired, or a ghost lease was left behind — is *pending*,
    exactly what an engine claiming work would conclude.
    """
    manifest = _load_manifest(campaign_dir)
    jobs = manifest.get("jobs", [])
    shard = manifest.get("shard")
    status = CampaignStatus(
        campaign_dir=campaign_dir,
        invocation=manifest.get("invocation"),
        total=len(jobs),
        shard=shard,
    )
    # A plain local dir has no leases/ directory, so lease_info is
    # None for every job and the lease classification is a no-op.
    leases = SharedDirStore(campaign_dir)
    jobs_dir = os.path.join(campaign_dir, _JOBS_DIR)
    quarantine_dir = os.path.join(campaign_dir, _QUARANTINE_DIR)
    now = time.time()
    states: List[str] = []
    for index, job in enumerate(jobs):
        job_id = job["id"]
        label = job.get("label", job_id)
        if os.path.exists(os.path.join(jobs_dir, f"{job_id}.json")):
            status.done.append(label)
            states.append("done")
        elif os.path.exists(os.path.join(quarantine_dir, f"{job_id}.json")):
            with open(os.path.join(quarantine_dir, f"{job_id}.json")) as handle:
                status.quarantined.append(json.load(handle))
            states.append("quarantined")
        else:
            info = leases.lease_info(index)
            if info is not None and not info.expired(now):
                status.running.append(label)
                states.append("running")
            else:
                status.pending.append(label)
                states.append("pending")
    count = (shard or {}).get("count")
    if count and count > 1:
        here = (shard or {}).get("index")
        for shard_id in range(count):
            members = [
                position
                for position, job in enumerate(jobs)
                if shard_of(job["fingerprint"], count) == shard_id
            ]
            status.per_shard.append(
                {
                    "shard": shard_id,
                    "done": sum(
                        1 for position in members if states[position] == "done"
                    ),
                    "total": len(members),
                    "here": here == shard_id,
                }
            )
    return status
