"""Extension study: how many shared bits should non-disjoint sharing use?

The paper restricts the shared set ``C`` to one variable "so that the
hardware cost is not increased too much" (§IV-B1).  This study
quantifies that choice: for ``s = 0`` (plain disjoint), ``1`` (the
paper) and ``2`` (the generalisation), it compiles every output bit
with the best ``s``-shared decomposition found around the BS-SA
partitions, then measures the realised MED, LUT storage, area and
1024-read energy of the resulting homogeneous architecture.

Expected shape: error decreases with ``s`` with diminishing returns,
while storage/energy grow roughly with ``2**s`` free tables — the
trade-off that justifies the paper's ``s = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from ..boolean.function import BooleanFunction
from ..core.bs_sa import find_best_settings, run_bssa
from ..core.config import AlgorithmConfig
from ..core.cost import cost_vectors_fixed
from ..core.nondisjoint import optimize_multi_shared
from ..core.settings import Setting, SettingSequence
from ..hardware.architectures import DaltaDesign, MultiSharedNdDesign
from ..hardware.power import measure_energy, random_read_workload
from ..hardware.simulate import verify_design
from ..metrics import distributions
from ..workloads import registry
from . import reporting
from .runner import ExperimentScale

__all__ = ["SharedBitsPoint", "SharedBitsResult", "run_shared_bits_study"]


@dataclass
class SharedBitsPoint:
    """Measurements of one shared-set size on one benchmark."""

    n_shared: int
    med: float
    lut_bits: int
    area_um2: float
    energy_fj: float
    verified: bool


@dataclass
class SharedBitsResult:
    """The full study: benchmark -> [points for s = 0, 1, 2, ...]."""

    scale_name: str
    n_inputs: int
    rows: Dict[str, List[SharedBitsPoint]] = field(default_factory=dict)

    def geomean_med(self, n_shared: int) -> float:
        return reporting.geomean(
            next(pt.med for pt in points if pt.n_shared == n_shared)
            for points in self.rows.values()
        )

    def render(self) -> str:
        headers = ["benchmark", "s", "MED", "LUT bits", "area um^2", "fJ/read"]
        body = []
        for bench, points in self.rows.items():
            for pt in points:
                body.append(
                    [bench, pt.n_shared, pt.med, pt.lut_bits, pt.area_um2, pt.energy_fj]
                )
        shared_counts = sorted(
            {pt.n_shared for points in self.rows.values() for pt in points}
        )
        footer = "geomean MED by s: " + ", ".join(
            f"s={s}: {reporting.format_value(self.geomean_med(s))}"
            for s in shared_counts
        )
        table = reporting.format_table(
            headers,
            body,
            title=(
                f"Shared-bits study (extension) — scale={self.scale_name}, "
                f"{self.n_inputs}-bit benchmarks"
            ),
        )
        return table + "\n" + footer

    def as_dict(self) -> dict:
        return {
            "scale": self.scale_name,
            "n_inputs": self.n_inputs,
            "rows": {
                bench: [
                    {
                        "n_shared": pt.n_shared,
                        "med": pt.med,
                        "lut_bits": pt.lut_bits,
                        "area_um2": pt.area_um2,
                        "energy_fj": pt.energy_fj,
                    }
                    for pt in points
                ]
                for bench, points in self.rows.items()
            },
        }


def _nested_candidates(
    target: BooleanFunction,
    base: SettingSequence,
    max_shared: int,
    config: AlgorithmConfig,
    rng: np.random.Generator,
    p: np.ndarray,
) -> List[Dict[int, Setting]]:
    """Per output bit: the best setting allowed at each shared-set size.

    The choice sets nest — the size-``s`` candidate is the best of the
    disjoint candidate and every greedily-grown shared set up to size
    ``s`` — so per-bit candidate errors are monotone non-increasing in
    ``s`` *by construction*.  Candidates for all sizes are derived in
    one pass against the same base context so the comparison is not
    polluted by independent random streams.
    """
    candidates: List[Dict[int, Setting]] = []
    for k in range(target.n_outputs):
        rest = base.rest_word(target, k)
        costs = cost_vectors_fixed(target, rest, k)
        found = find_best_settings(costs, p, target.n_inputs, config, rng)
        best = found.best
        incumbent = base[k]
        if incumbent is not None and incumbent.mode == "normal":
            incumbent_error = costs.evaluate(
                incumbent.decomposition.evaluate(target.n_inputs), p
            )
            if incumbent_error <= best.error:
                best = Setting(incumbent_error, incumbent.decomposition)

        per_size: Dict[int, Setting] = {0: best}
        partition = best.decomposition.partition
        chosen: List[int] = []
        current = best
        for size in range(1, max_shared + 1):
            if partition.n_bound <= size:
                per_size[size] = current
                continue
            best_bit, best_result = None, None
            for bit in partition.bound:
                if bit in chosen:
                    continue
                result = optimize_multi_shared(
                    costs,
                    p,
                    partition,
                    target.n_inputs,
                    chosen + [bit],
                    n_initial_patterns=config.n_initial_patterns,
                    rng=rng,
                )
                if best_result is None or result.error < best_result.error:
                    best_bit, best_result = bit, result
            if best_bit is None:
                per_size[size] = current
                continue
            chosen.append(best_bit)
            if best_result.error < current.error:
                current = Setting(best_result.error, best_result.decomposition)
            per_size[size] = current
        candidates.append(per_size)
    return candidates


def run_shared_bits_study(
    scale: Optional[ExperimentScale] = None,
    benchmarks: Sequence[str] = ("cos", "multiplier"),
    shared_sizes: Sequence[int] = (0, 1, 2),
    base_seed: int = 0,
) -> SharedBitsResult:
    """Run the study at the given scale over the listed benchmarks."""
    if scale is None:
        scale = ExperimentScale.default()
    result = SharedBitsResult(scale.name, scale.n_inputs)
    config = scale.bssa_config

    for name in benchmarks:
        target = registry.get(name, scale.n_inputs)
        p = distributions.uniform(target.n_inputs)
        words = random_read_workload(target.n_inputs, seed=base_seed)
        rng = np.random.default_rng(base_seed + 7)
        compiled = run_bssa(target, config, rng=rng)
        candidates = _nested_candidates(
            target, compiled.sequence, max(shared_sizes), config, rng, p
        )

        points: List[SharedBitsPoint] = []
        for s in shared_sizes:
            sequence = SettingSequence(
                target.n_outputs, [candidates[k][s] for k in range(target.n_outputs)]
            )
            if s == 0:
                design = DaltaDesign(f"{name}-s0", target, sequence)
            else:
                design = MultiSharedNdDesign(
                    f"{name}-s{s}", target, sequence, n_shared_max=s
                )
            verification = verify_design(design, words=words)
            energy = measure_energy(design, words=words)
            points.append(
                SharedBitsPoint(
                    n_shared=s,
                    med=sequence.med(target, p),
                    lut_bits=sequence.total_lut_entries(),
                    area_um2=design.area_um2(),
                    energy_fj=energy.per_read_fj,
                    verified=verification.passed,
                )
            )
        result.rows[name] = points
    return result
