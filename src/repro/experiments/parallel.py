"""Multi-process execution of repeated algorithm runs.

The paper parallelises OptForPart calls over 44 threads; the Python
port instead parallelises at the coarser repeated-run granularity
(independent seeds of whole algorithm runs), which needs no shared
state and keeps every run bit-identical to its serial counterpart.

Workers receive plain data (truth table, config, seed) so the jobs
pickle cleanly on every platform.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import List, Optional, Sequence

import numpy as np

from ..boolean.function import BooleanFunction
from ..core.bs_sa import run_bssa
from ..core.config import AlgorithmConfig
from ..core.dalta import run_dalta
from ..core.result import ApproximationResult

__all__ = ["RunSpec", "run_many", "seeds_for"]


class RunSpec:
    """One algorithm run, described by picklable data."""

    def __init__(
        self,
        algorithm: str,
        table: np.ndarray,
        n_inputs: int,
        n_outputs: int,
        name: str,
        config: AlgorithmConfig,
        base_seed: Optional[int],
        spawn_index: int,
        architecture: str = "normal",
    ) -> None:
        if algorithm not in ("dalta", "bs-sa"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.table = np.asarray(table, dtype=np.int64)
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.name = name
        self.config = config
        self.base_seed = base_seed
        self.spawn_index = int(spawn_index)
        self.architecture = architecture

    @classmethod
    def for_function(
        cls,
        algorithm: str,
        target: BooleanFunction,
        config: AlgorithmConfig,
        base_seed: Optional[int],
        spawn_index: int,
        architecture: str = "normal",
    ) -> "RunSpec":
        return cls(
            algorithm,
            target.table,
            target.n_inputs,
            target.n_outputs,
            target.name,
            config,
            base_seed,
            spawn_index,
            architecture,
        )

    def _rng(self) -> np.random.Generator:
        """Identical to run ``spawn_index`` of the serial repeated_runs."""
        sequence = np.random.SeedSequence(
            self.base_seed, spawn_key=(self.spawn_index,)
        )
        return np.random.default_rng(sequence)

    def execute(self) -> ApproximationResult:
        target = BooleanFunction(
            self.n_inputs, self.n_outputs, self.table, name=self.name
        )
        if self.algorithm == "dalta":
            return run_dalta(target, self.config, rng=self._rng())
        return run_bssa(
            target, self.config, rng=self._rng(), architecture=self.architecture
        )


def _execute(spec: RunSpec) -> ApproximationResult:
    return spec.execute()


def seeds_for(n_runs: int, base_seed: Optional[int]) -> List[int]:
    """Spawn indices matching the serial :func:`repeated_runs` seeds."""
    return list(range(n_runs))


def run_many(specs: Sequence[RunSpec], n_jobs: int = 1) -> List[ApproximationResult]:
    """Execute run specs, serially or across worker processes.

    Results come back in spec order regardless of completion order, so
    downstream statistics are independent of ``n_jobs``.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if n_jobs == 1 or len(specs) <= 1:
        return [spec.execute() for spec in specs]
    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        return list(pool.map(_execute, specs))
