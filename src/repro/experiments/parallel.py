"""Multi-process execution of repeated algorithm runs.

The paper parallelises OptForPart calls over 44 threads; the Python
port instead parallelises at the coarser repeated-run granularity
(independent seeds of whole algorithm runs), which needs no shared
state and keeps every run bit-identical to its serial counterpart.

Workers receive plain data (truth table, config, seed) so the jobs
pickle cleanly on every platform.  Seeding uses
``np.random.SeedSequence(base_seed).spawn(...)`` — the same spawn the
serial :func:`repro.experiments.runner.repeated_runs` performs — so a
parallel run is provably bit-identical to the serial one, and
:meth:`RunSpec.seed_info` exposes the spawned seed for run manifests.

When a telemetry session is active (:mod:`repro.obs`), worker
processes capture their spans/counters in memory and ship them back
with each result; the parent folds them into its own session as
futures complete (a results queue), so one trace file holds the whole
multi-process run and progress lines appear as runs finish.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import threading
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from typing import Any, Dict, List, Optional, Sequence, Tuple

import numpy as np

from .. import caching, obs
from ..boolean.function import BooleanFunction
from ..core.bs_sa import run_bssa
from ..core.config import AlgorithmConfig
from ..core.dalta import run_dalta
from ..core.fusion import FusionHub
from ..core.result import ApproximationResult

__all__ = ["RunSpec", "run_many", "run_specs_fused", "seeds_for"]


class RunSpec:
    """One algorithm run, described by picklable data.

    Seeding comes in two flavours: the default *spawned* mode draws the
    run's generator from ``SeedSequence(base_seed).spawn(...)`` exactly
    like the serial runner, while ``direct_seed`` pins the generator to
    ``np.random.default_rng(direct_seed)`` — the form the Fig. 5
    harness uses for its single BS-SA compilations.
    """

    def __init__(
        self,
        algorithm: str,
        table: np.ndarray,
        n_inputs: int,
        n_outputs: int,
        name: str,
        config: AlgorithmConfig,
        base_seed: Optional[int],
        spawn_index: int,
        architecture: str = "normal",
        direct_seed: Optional[int] = None,
    ) -> None:
        if algorithm not in ("dalta", "bs-sa"):
            raise ValueError(f"unknown algorithm {algorithm!r}")
        self.algorithm = algorithm
        self.table = np.asarray(table, dtype=np.int64)
        self.n_inputs = n_inputs
        self.n_outputs = n_outputs
        self.name = name
        self.config = config
        self.base_seed = base_seed
        self.spawn_index = int(spawn_index)
        self.architecture = architecture
        self.direct_seed = direct_seed

    @classmethod
    def for_function(
        cls,
        algorithm: str,
        target: BooleanFunction,
        config: AlgorithmConfig,
        base_seed: Optional[int],
        spawn_index: int,
        architecture: str = "normal",
        direct_seed: Optional[int] = None,
    ) -> "RunSpec":
        return cls(
            algorithm,
            target.table,
            target.n_inputs,
            target.n_outputs,
            target.name,
            config,
            base_seed,
            spawn_index,
            architecture,
            direct_seed,
        )

    def target_function(self) -> BooleanFunction:
        """Materialise the target this spec runs against."""
        return BooleanFunction(
            self.n_inputs, self.n_outputs, self.table, name=self.name
        )

    def fingerprint(self) -> str:
        """Content digest binding a durable campaign job to this spec.

        Covers everything that determines the run's output — the target
        table, the algorithm configuration, and the seeding — so a
        checkpoint directory can refuse to resume against a different
        campaign definition.
        """
        digest = hashlib.sha256()
        digest.update(self.table.tobytes())
        descriptor = {
            "algorithm": self.algorithm,
            "name": self.name,
            "n_inputs": self.n_inputs,
            "n_outputs": self.n_outputs,
            "config": dataclasses.asdict(self.config),
            "base_seed": self.base_seed,
            "spawn_index": self.spawn_index,
            "architecture": self.architecture,
            "direct_seed": self.direct_seed,
        }
        digest.update(json.dumps(descriptor, sort_keys=True).encode())
        return digest.hexdigest()[:16]

    @property
    def label(self) -> str:
        """Human-readable job label for status displays."""
        seed = (
            f"seed={self.direct_seed}"
            if self.direct_seed is not None
            else f"run={self.spawn_index}"
        )
        return f"{self.name}/{self.algorithm}/{self.architecture}[{seed}]"

    def seed_sequence(self) -> np.random.SeedSequence:
        """The spawned child seed, exactly as the serial runner spawns it.

        ``SeedSequence(base_seed).spawn(k)[i]`` is the canonical spawn
        the serial :func:`repeated_runs` performs, so worker run ``i``
        is bit-identical to serial run ``i`` by construction.
        """
        return np.random.SeedSequence(self.base_seed).spawn(
            self.spawn_index + 1
        )[self.spawn_index]

    def seed_info(self) -> Dict[str, Any]:
        """Manifest record of the seed driving this run."""
        if self.direct_seed is not None:
            return {
                "benchmark": self.name,
                "algorithm": self.algorithm,
                "direct_seed": self.direct_seed,
            }
        sequence = self.seed_sequence()
        return {
            "benchmark": self.name,
            "algorithm": self.algorithm,
            "base_seed": self.base_seed,
            "spawn_index": self.spawn_index,
            "spawn_key": list(sequence.spawn_key),
            "state": [int(w) for w in sequence.generate_state(4)],
        }

    def _rng(self) -> np.random.Generator:
        """Identical to run ``spawn_index`` of the serial repeated_runs.

        In direct-seed mode, identical to the serial harness's
        ``np.random.default_rng(direct_seed)`` call.
        """
        if self.direct_seed is not None:
            return np.random.default_rng(self.direct_seed)
        return np.random.default_rng(self.seed_sequence())

    def execute(self, fresh_caches: bool = True) -> ApproximationResult:
        # Fresh caches per run: results are cache-independent by
        # construction, but the cache hit/miss counters are not — a
        # warm memo would make worker telemetry depend on which runs
        # shared a process, breaking serial-vs-parallel counter
        # equality (see tests/obs/test_integration.py).  The warm-pool
        # workers pass ``fresh_caches=False``: the campaign-shared
        # OptForPart memo must survive across jobs, and memo hits are
        # bit-exact by construction (content-digest keys), so only the
        # counters — never the results — depend on warmth.
        if fresh_caches:
            caching.clear_caches()
        # Re-seed the legacy global NumPy state from the same spawned
        # sequence: the algorithms only use the explicit generator, but
        # this pins down any incidental np.random.* use in workloads.
        if self.direct_seed is not None:
            np.random.seed(self.direct_seed % (2**32))
        else:
            sequence = self.seed_sequence()
            np.random.seed(int(sequence.generate_state(1)[0]) % (2**32))
        target = self.target_function()
        if self.algorithm == "dalta":
            return run_dalta(target, self.config, rng=self._rng())
        return run_bssa(
            target, self.config, rng=self._rng(), architecture=self.architecture
        )


def _execute(spec: RunSpec) -> ApproximationResult:
    return spec.execute()


def _execute_traced(
    spec: RunSpec,
) -> Tuple[ApproximationResult, List[Dict[str, Any]]]:
    """Worker entry point when the parent has telemetry enabled.

    Runs under a fresh in-memory session and returns the captured
    records (spans, events, final counter snapshot) with the result.
    """
    sink = obs.MemorySink()
    with obs.session(sink):
        result = spec.execute()
    return result, sink.records


def run_specs_fused(
    specs: Sequence[RunSpec], fresh_caches: bool = True
) -> List[Tuple[str, Any]]:
    """Execute several specs concurrently with fused kernel dispatch.

    One thread per spec runs the ordinary :meth:`RunSpec.execute` body
    under a shared :class:`repro.core.fusion.FusionHub`, so the specs'
    independent ``opt_for_part`` / ``opt_for_part_many`` batches fuse
    into wide grouped kernel passes — while each spec's explicit
    generator stream, and therefore its result, stays bit-identical to
    a standalone ``execute()`` (fusion reorders *scheduling*, never
    draws).  This is the execution body behind fused serve batches and
    the fused benchmark mode.

    ``fresh_caches`` clears the process caches once, up front (the
    specs then share the warm memo exactly as a serial replay of the
    group would).  Returns one ``("ok", result)`` or ``("error",
    traceback_text)`` outcome per spec, in input order — one spec's
    failure never poisons its groupmates.
    """
    specs = list(specs)
    if not specs:
        return []
    if fresh_caches:
        caching.clear_caches()
    hub = FusionHub(parties=len(specs))
    outcomes: List[Optional[Tuple[str, Any]]] = [None] * len(specs)

    def body(index: int, spec: RunSpec) -> None:
        try:
            with hub.party():
                result = spec.execute(fresh_caches=False)
        except Exception:
            outcomes[index] = ("error", traceback.format_exc(limit=8))
        else:
            outcomes[index] = ("ok", result)

    threads = [
        threading.Thread(
            target=body, args=(index, spec), name=f"fused-spec-{index}"
        )
        for index, spec in enumerate(specs)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return outcomes  # type: ignore[return-value]


def seeds_for(n_runs: int, base_seed: Optional[int]) -> List[int]:
    """Spawn indices matching the serial :func:`repeated_runs` seeds."""
    return list(range(n_runs))


def _notify_completed(spec: RunSpec, result: ApproximationResult, **attrs) -> None:
    med = getattr(result, "med", None)
    if med is not None:
        obs.observe("run.med", med)
    obs.event(
        "run.completed",
        benchmark=spec.name,
        algorithm=spec.algorithm,
        seed=spec.spawn_index,
        elapsed=result.elapsed_seconds,
        **attrs,
    )


def run_many(
    specs: Sequence[RunSpec],
    n_jobs: int = 1,
    backend: str = "spawn",
) -> List[ApproximationResult]:
    """Execute run specs, serially or across worker processes.

    Results come back in spec order regardless of completion order, so
    downstream statistics are independent of ``n_jobs`` (and of
    ``backend``).  ``backend`` selects the multi-process transport:
    ``"spawn"`` is the fault-isolated per-job path (a process pool of
    pickled jobs), ``"pool"`` the warm-pool path of
    :mod:`repro.experiments.pool` — persistent workers, shared-memory
    tables, and a campaign-shared OptForPart memo.  Under an active
    telemetry session, worker telemetry is aggregated into the parent
    session and a ``run.completed`` event (one progress line on the
    stderr sink) fires per run.
    """
    if n_jobs < 1:
        raise ValueError("n_jobs must be >= 1")
    if backend not in ("spawn", "pool"):
        raise ValueError(f"unknown backend {backend!r}; choose spawn or pool")
    telemetry = obs.current()
    if telemetry is not None:
        for spec in specs:
            telemetry.event("run.seeded", **spec.seed_info())
    if n_jobs == 1 or len(specs) <= 1:
        results = []
        for spec in specs:
            result = spec.execute()
            if telemetry is not None:
                _notify_completed(spec, result)
            results.append(result)
        return results
    if backend == "pool":
        return _run_many_pool(specs, n_jobs, telemetry)

    with ProcessPoolExecutor(max_workers=n_jobs) as pool:
        if telemetry is None:
            return list(pool.map(_execute, specs))
        # Results queue: drain futures as they complete so worker
        # telemetry and progress surface while later runs still execute.
        futures = {
            pool.submit(_execute_traced, spec): index
            for index, spec in enumerate(specs)
        }
        results: List[Optional[ApproximationResult]] = [None] * len(specs)
        pending = set(futures)
        while pending:
            done, pending = wait(pending, return_when=FIRST_COMPLETED)
            for future in done:
                index = futures[future]
                result, records = future.result()
                telemetry.absorb(records, worker=index)
                results[index] = result
                _notify_completed(specs[index], result, worker=index)
        return results  # type: ignore[return-value]


def _run_many_pool(
    specs: Sequence[RunSpec],
    n_jobs: int,
    telemetry,
) -> List[ApproximationResult]:
    """``run_many`` over the warm-pool backend.

    Workers ship checkpoint payloads rather than pickled results; the
    payloads are JSON round-tripped before reconstruction so the values
    are byte-identical to what the engine's checkpoint files would
    yield (``result_to_payload`` is proven lossless by the engine
    tests).
    """
    from .engine import result_from_payload
    from .pool import WorkerPool

    pool = WorkerPool(
        min(n_jobs, len(specs)),
        capture_telemetry=telemetry is not None,
    )
    try:
        payloads = pool.run(specs)
    finally:
        pool.close()
    results: List[ApproximationResult] = []
    for index, (spec, payload) in enumerate(zip(specs, payloads)):
        payload = json.loads(json.dumps(payload, sort_keys=True, default=str))
        records = payload.pop("telemetry", None)
        result = result_from_payload(spec, payload)
        if telemetry is not None:
            if isinstance(records, list):
                telemetry.absorb(records, worker=index)
            _notify_completed(spec, result, worker=index)
        results.append(result)
    return results
