"""Table I: the benchmark suite listing.

Thin harness over :func:`repro.workloads.table1_rows` that also builds
every benchmark (so the bench target actually exercises the
generators) and sanity-checks the declared output widths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..workloads import registry
from . import reporting

__all__ = ["Table1Result", "run_table1"]


@dataclass
class Table1Result:
    """The regenerated Table I."""

    n_inputs: int
    rows: List[Dict[str, object]] = field(default_factory=list)

    def render(self) -> str:
        headers = ["benchmark", "kind", "#input", "#output", "domain", "range"]
        body = []
        for row in self.rows:
            domain = row.get("domain")
            value_range = row.get("range")
            body.append(
                [
                    row["benchmark"],
                    row["kind"],
                    row["n_inputs"],
                    row["n_outputs"],
                    f"[{domain[0]:g}, {domain[1]:g}]" if domain else "-",
                    f"[{value_range[0]:g}, {value_range[1]:g}]"
                    if value_range
                    else "-",
                ]
            )
        return reporting.format_table(
            headers, body, title=f"Table I reproduction — {self.n_inputs}-bit inputs"
        )

    def as_dict(self) -> dict:
        return {"n_inputs": self.n_inputs, "rows": self.rows}


def run_table1(n_inputs: int = 16, build: bool = True) -> Table1Result:
    """Regenerate Table I; ``build=True`` also tabulates every function."""
    rows = registry.table1_rows(n_inputs)
    if build:
        for row in rows:
            function = registry.get(str(row["benchmark"]), n_inputs)
            if function.n_outputs != row["n_outputs"]:
                raise AssertionError(
                    f"{row['benchmark']}: declared {row['n_outputs']} outputs, "
                    f"built {function.n_outputs}"
                )
    return Table1Result(n_inputs, rows)
