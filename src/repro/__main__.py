"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark suite (Table I).
``compile``
    Compile a benchmark into an approximate LUT, print its report and
    optionally save the configuration / RTL.
``experiment``
    Rerun one of the paper's experiments (table1/table2/fig5/fig6 or an
    ablation) at a chosen scale.
``run``
    Run a paper experiment as a fault-tolerant, checkpointed campaign
    under a campaign directory.
``resume``
    Resume an interrupted campaign from its checkpoint directory.
``status``
    Show a campaign directory's progress (done / running / pending /
    quarantined, with per-shard breakdown for sharded campaigns).
``merge-campaign``
    Join shard campaign directories (``repro run --shard i/n``) into
    one campaign byte-identical to an unsharded run.
``info``
    Describe a saved configuration file.
``summarize``
    Per-phase breakdown of a telemetry trace file, or the provenance
    and headline numbers of a ``BENCH_*.json`` snapshot.
``top``
    Live terminal view of a running ``--metrics-port`` campaign.
``serve``
    Run the compiler as a long-lived HTTP/JSON daemon: ``POST
    /compile`` with a truth table, workload name, or full spec;
    responses are byte-identical to offline ``repro compile``
    (see ``docs/serving.md``).

Every command accepts ``--trace out.jsonl`` (record a JSONL telemetry
trace plus a run manifest) and ``--verbose`` (stderr progress lines);
see ``docs/observability.md``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import compile_api, obs, workloads
from .core import serialize
from .experiments import (
    ExperimentScale,
    run_ablation,
    run_fig5,
    run_fig6,
    run_shared_bits_study,
    run_table1,
    run_table2,
)
from .experiments.engine import (
    CampaignError,
    EngineConfig,
    campaign_status,
    resolve_jobs,
    resume_campaign,
    run_experiment_campaign,
)
from .experiments.store import DEFAULT_LEASE_TTL, merge_campaigns

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}

#: named search budgets (shared with the serve daemon's request knob)
_CONFIGS = compile_api.BUDGETS


def _cmd_list(_args) -> int:
    print(run_table1(16, build=False).render())
    return 0


def _cmd_compile(args) -> int:
    print(
        f"compiling {args.benchmark} ({args.bits}-bit) onto "
        f"{args.architecture} with {args.algorithm} ..."
    )
    # The same compile_one() the serve daemon executes per request —
    # one code path, byte-identical outputs (tests/serve pins this).
    artifact = compile_api.compile_one(
        args.benchmark,
        bits=args.bits,
        architecture=args.architecture,
        algorithm=args.algorithm,
        budget=args.budget,
        seed=args.seed,
    )
    lut = artifact.lut
    print(f"MED: {lut.med:.4f}   modes: {lut.mode_counts()}")
    print(lut.hardware().report())
    if args.save:
        serialize.save(lut, args.save)
        print(f"configuration saved to {args.save}")
    if args.verilog:
        with open(args.verilog, "w") as handle:
            handle.write(lut.to_verilog())
        print(f"RTL written to {args.verilog}")
    return 0


def _cmd_experiment(args) -> int:
    scale = _SCALES[args.scale]()
    runners = {
        "table1": lambda: run_table1(scale.n_inputs),
        "table2": lambda: run_table2(scale, base_seed=args.seed or 0),
        "fig5": lambda: run_fig5(scale, base_seed=args.seed or 0),
        "fig6": lambda: run_fig6("cos", scale, base_seed=args.seed or 0),
        "ablation-predictive": lambda: run_ablation("predictive_model", scale),
        "ablation-beam": lambda: run_ablation("beam_width", scale),
        "ablation-sa": lambda: run_ablation("partition_search", scale),
        "shared-bits": lambda: run_shared_bits_study(scale),
    }
    result = runners[args.name]()
    print(result.render())
    return 0


def _cmd_info(args) -> int:
    import json

    with open(args.path) as handle:
        payload = json.load(handle)
    target = payload.get("target", {})
    print(f"file:        {args.path}")
    print(f"format:      {payload.get('format')} v{payload.get('version')}")
    print(
        f"target:      {target.get('name')} "
        f"({target.get('n_inputs')}-in / {target.get('n_outputs')}-out)"
    )
    print(f"architecture: {payload.get('architecture')}")
    print(f"recorded MED: {payload.get('med')}")
    modes: dict = {}
    for setting in payload.get("settings", []):
        modes[setting["mode"]] = modes.get(setting["mode"], 0) + 1
    print(f"modes:       {modes}")
    return 0


def _jobs_arg(text: str) -> int:
    """argparse type for ``--jobs``: a strictly positive integer."""
    try:
        value = int(text)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid int value: {text!r}")
    if value < 1:
        raise argparse.ArgumentTypeError(
            f"must be >= 1 (got {value}); omit --jobs to use all CPUs"
        )
    return value


def _shard_arg(text: str):
    """argparse type for ``--shard``: ``i/n`` with 0 <= i < n."""
    index_text, _, count_text = text.partition("/")
    try:
        index, count = int(index_text), int(count_text)
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"expected i/n (e.g. 2/4), got {text!r}"
        )
    if count < 1 or not (0 <= index < count):
        raise argparse.ArgumentTypeError(
            f"shard index must be in [0, n) with n >= 1; got {text!r}"
        )
    return (index, count)


def _engine_config(args) -> EngineConfig:
    shard = getattr(args, "shard", None)
    return EngineConfig(
        n_jobs=resolve_jobs(args.jobs),
        job_timeout=args.timeout,
        max_retries=args.retries,
        backoff_base=args.backoff,
        backend=args.backend,
        memo_dir=args.memo_dir,
        metrics_port=args.metrics_port,
        store=getattr(args, "store", "local"),
        shard_index=None if shard is None else shard[0],
        shard_count=None if shard is None else shard[1],
        lease_ttl=getattr(args, "lease_ttl", DEFAULT_LEASE_TTL),
    )


def _report_outcome(outcome) -> int:
    from .experiments import reporting

    summary = reporting.format_campaign_summary(outcome)
    first, _, details = summary.partition("\n")
    print(first)
    if outcome.quarantined:
        print(details, file=sys.stderr)
        return 3
    return 0


def _render_result(result, outcome) -> None:
    """Print the experiment report, unless this was a partial shard run.

    A strictly partitioned ``--shard i/n`` run holds only its own
    slice of the campaign — rendering the full table from it would be
    misleading (and some benchmarks may have no completed runs at
    all), so point at ``merge-campaign`` instead.
    """
    if outcome.skipped:
        print(
            f"shard run complete: {outcome.skipped} job(s) belong to "
            "other shards; join the shard directories with "
            "`repro merge-campaign <dirs...> --into <dir>` and resume "
            "or summarize the merged campaign"
        )
        return
    print(result.render())


def _cmd_run(args) -> int:
    try:
        config = _engine_config(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    result, outcome = run_experiment_campaign(
        args.experiment,
        args.scale,
        base_seed=args.seed or 0,
        campaign_dir=args.dir,
        config=config,
    )
    _render_result(result, outcome)
    return _report_outcome(outcome)


def _cmd_resume(args) -> int:
    try:
        result, outcome = resume_campaign(args.dir, config=_engine_config(args))
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    _render_result(result, outcome)
    return _report_outcome(outcome)


def _cmd_status(args) -> int:
    try:
        print(campaign_status(args.dir).render())
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return 0


def _cmd_merge(args) -> int:
    try:
        outcome = merge_campaigns(args.sources, args.into)
    except CampaignError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    print(outcome.render())
    return 0 if outcome.complete else 3


def _render_bench_snapshot(path: str, payload: dict) -> str:
    """Human summary of a ``benchmarks/snapshot_*.py`` JSON file."""
    lines = [f"benchmark snapshot: {path}"]
    provenance = payload.get("provenance") or {}
    if provenance:
        git_rev = provenance.get("git_rev") or "unknown"
        lines.append(
            "provenance: git={git} created={created} cpus={cpus} "
            "python={python}".format(
                git=str(git_rev)[:12],
                created=provenance.get("created_iso", "?"),
                cpus=provenance.get("cpu_count", "?"),
                python=provenance.get("python", "?"),
            )
        )
    else:
        lines.append("provenance: (not stamped — regenerate the snapshot)")
    scope = [
        f"{key}={payload[key]}"
        for key in ("scale", "n_inputs", "n_runs", "base_seed", "repeats", "jobs")
        if key in payload
    ]
    if payload.get("benchmarks"):
        scope.append("benchmarks=" + ",".join(payload["benchmarks"]))
    if scope:
        lines.append("scope: " + " ".join(scope))
    if "fast" in payload and "reference" in payload:
        lines.append(
            f"table2 wall-clock: fast {payload['fast'].get('min', 0):.2f}s, "
            f"reference {payload['reference'].get('min', 0):.2f}s"
        )
    warm = payload.get("warm_rerun")
    if warm:
        lines.append(f"warm rerun speedup: {warm.get('speedup', 0):.2f}x")
    speedup = payload.get("speedup")
    if isinstance(speedup, dict):
        for name in sorted(speedup):
            lines.append(f"speedup {name}: {speedup[name]:.2f}x")
    meds = payload.get("meds")
    if isinstance(meds, list):
        lines.append(f"MED rows: {len(meds)} (byte-compared by check_regression)")
    return "\n".join(lines)


def _cmd_summarize(args) -> int:
    import json

    # A bench snapshot (BENCH_*.json) is one whole-file JSON object;
    # a telemetry trace is JSONL.  Dispatch on what the file actually
    # parses as.
    try:
        with open(args.path) as handle:
            text = handle.read()
    except FileNotFoundError:
        print(f"error: trace file not found: {args.path}", file=sys.stderr)
        return 2
    try:
        payload = json.loads(text)
    except json.JSONDecodeError:
        payload = None
    if isinstance(payload, dict) and "protocol" in payload:
        print(_render_bench_snapshot(args.path, payload))
        return 0
    try:
        records, bad_lineno = obs.summarize.load_trace_tolerant(args.path)
    except FileNotFoundError:
        print(f"error: trace file not found: {args.path}", file=sys.stderr)
        return 2
    if bad_lineno is not None:
        print(
            f"warning: {args.path} is truncated at line {bad_lineno} "
            f"(summarising the {len(records)} record(s) before it)",
            file=sys.stderr,
        )
    print(obs.summarize.summarize(records).render())
    return 0


def _cmd_top(args) -> int:
    import json
    import time
    import urllib.error
    import urllib.request

    address = args.address
    if "://" not in address:
        address = "http://" + address
    base = address.rstrip("/")
    first = True
    while True:
        try:
            with urllib.request.urlopen(base + "/state", timeout=5) as response:
                state = json.load(response)
        except (urllib.error.URLError, OSError, json.JSONDecodeError) as exc:
            if first:
                print(f"error: cannot reach {base}/state: {exc}", file=sys.stderr)
                return 2
            # The campaign stops its server when it finishes; a later
            # refresh failing is the normal end of a `top` session.
            print(f"[repro top] endpoint gone ({exc}); campaign over?")
            return 0
        frame = obs.exposition.render_top(state)
        if not args.once and sys.stdout.isatty():
            print("\x1b[2J\x1b[H", end="")
        elif not first:
            print("---")
        print(frame, end="")
        if args.once:
            return 0
        first = False
        time.sleep(args.interval)


def _cmd_serve(args) -> int:
    from .serve import ServeConfig, ServeDaemon

    try:
        config = ServeConfig(
            jobs=resolve_jobs(args.jobs),
            backend=args.backend,
            memo_dir=args.memo_dir,
            artifact_dir=args.artifact_dir,
            cache_size=args.cache_size,
            batch_window=args.batch_window,
            max_batch=args.max_batch,
            max_retries=args.retries,
            rate=args.rate,
            burst=args.burst,
            request_timeout=args.request_timeout,
        )
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    daemon = ServeDaemon(config, host=args.host, port=args.port)
    try:
        daemon.start()
    except OSError as exc:
        print(f"error: cannot bind {args.host}:{args.port}: {exc}", file=sys.stderr)
        return 2
    try:
        print(
            f"repro serve listening on {daemon.url} "
            f"(backend={config.backend}, jobs={config.jobs})"
        )
        print(
            "POST /compile — metrics at /metrics, health at /healthz "
            "(docs/serving.md)"
        )
        daemon.serve_forever()
        print("shutting down")
    finally:
        daemon.stop()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    telemetry = argparse.ArgumentParser(add_help=False)
    telemetry.add_argument(
        "--trace",
        metavar="PATH",
        help="record a JSONL telemetry trace (plus run manifest) here",
    )
    telemetry.add_argument(
        "--verbose",
        "-v",
        action="store_true",
        help="print progress/span lines to stderr while running",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="show the benchmark suite", parents=[telemetry]
    ).set_defaults(func=_cmd_list)

    compile_parser = sub.add_parser(
        "compile", help="compile a benchmark", parents=[telemetry]
    )
    compile_parser.add_argument("benchmark", choices=workloads.names())
    compile_parser.add_argument("--bits", type=int, default=10)
    compile_parser.add_argument(
        "--architecture",
        default="bto-normal-nd",
        choices=["dalta", "bto-normal", "bto-normal-nd"],
    )
    compile_parser.add_argument(
        "--algorithm", default="bs-sa", choices=["bs-sa", "dalta"]
    )
    compile_parser.add_argument(
        "--budget", default="reduced", choices=sorted(_CONFIGS)
    )
    compile_parser.add_argument("--seed", type=int, default=0)
    compile_parser.add_argument("--save", help="write configuration JSON here")
    compile_parser.add_argument("--verilog", help="write RTL here")
    compile_parser.set_defaults(func=_cmd_compile)

    experiment_parser = sub.add_parser(
        "experiment", help="rerun a paper experiment", parents=[telemetry]
    )
    experiment_parser.add_argument(
        "name",
        choices=[
            "table1",
            "table2",
            "fig5",
            "fig6",
            "ablation-predictive",
            "ablation-beam",
            "ablation-sa",
            "shared-bits",
        ],
    )
    experiment_parser.add_argument(
        "--scale", default="default", choices=sorted(_SCALES)
    )
    experiment_parser.add_argument("--seed", type=int)
    experiment_parser.set_defaults(func=_cmd_experiment)

    engine_opts = argparse.ArgumentParser(add_help=False)
    engine_opts.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help=(
            "concurrent worker processes "
            "(default: all CPUs, clamped to the job count)"
        ),
    )
    engine_opts.add_argument(
        "--backend",
        default="spawn",
        choices=["spawn", "pool"],
        help=(
            "execution backend: spawn = one fault-isolated process per "
            "job, pool = persistent warm workers with a shared memo "
            "(see docs/performance.md)"
        ),
    )
    engine_opts.add_argument(
        "--memo-dir",
        default=None,
        metavar="DIR",
        help=(
            "persist the campaign's shared OptForPart memo here "
            "(pool backend only) so repeated campaigns start warm"
        ),
    )
    engine_opts.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds",
    )
    engine_opts.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per job before quarantine",
    )
    engine_opts.add_argument(
        "--backoff",
        type=float,
        default=0.0,
        help="base of the deterministic exponential retry backoff (s)",
    )
    engine_opts.add_argument(
        "--metrics-port",
        type=int,
        default=None,
        metavar="PORT",
        help=(
            "serve live Prometheus /metrics + /healthz on this port "
            "while the campaign runs (0 = pick a free port; watch it "
            "with `repro top`)"
        ),
    )
    engine_opts.add_argument(
        "--shard",
        type=_shard_arg,
        default=None,
        metavar="I/N",
        help=(
            "run only shard I of N (jobs partitioned by stable "
            "fingerprint hash — byte-identical membership on every "
            "host); join shard dirs with `repro merge-campaign`"
        ),
    )
    engine_opts.add_argument(
        "--store",
        default="local",
        choices=["local", "shared"],
        help=(
            "checkpoint store: local = one engine per directory, "
            "shared = concurrent shards on one shared-filesystem "
            "directory with lease-based work claiming"
        ),
    )
    engine_opts.add_argument(
        "--lease-ttl",
        type=float,
        default=DEFAULT_LEASE_TTL,
        metavar="SECONDS",
        help=(
            "seconds a shared-store lease stays valid without a "
            "heartbeat; a dead shard's jobs are reclaimed by a "
            "sibling after this long (default %(default)s)"
        ),
    )

    run_parser = sub.add_parser(
        "run",
        help="run an experiment as a checkpointed campaign",
        parents=[telemetry, engine_opts],
    )
    run_parser.add_argument("experiment", choices=["table2", "fig5"])
    run_parser.add_argument(
        "--dir", required=True, help="campaign checkpoint directory"
    )
    run_parser.add_argument("--scale", default="smoke", choices=sorted(_SCALES))
    run_parser.add_argument("--seed", type=int)
    run_parser.set_defaults(func=_cmd_run)

    resume_parser = sub.add_parser(
        "resume",
        help="resume an interrupted campaign",
        parents=[telemetry, engine_opts],
    )
    resume_parser.add_argument("dir", help="campaign checkpoint directory")
    resume_parser.set_defaults(func=_cmd_resume)

    status_parser = sub.add_parser(
        "status", help="show a campaign directory's progress"
    )
    status_parser.add_argument("dir", help="campaign checkpoint directory")
    status_parser.set_defaults(func=_cmd_status)

    merge_parser = sub.add_parser(
        "merge-campaign",
        help="join shard campaign directories into one campaign",
        parents=[telemetry],
    )
    merge_parser.add_argument(
        "sources", nargs="+", help="shard campaign directories to merge"
    )
    merge_parser.add_argument(
        "--into", required=True, help="destination campaign directory"
    )
    merge_parser.set_defaults(func=_cmd_merge)

    info_parser = sub.add_parser(
        "info", help="describe a saved configuration", parents=[telemetry]
    )
    info_parser.add_argument("path")
    info_parser.set_defaults(func=_cmd_info)

    summarize_parser = sub.add_parser(
        "summarize",
        help="per-phase breakdown of a trace file (or a BENCH snapshot)",
    )
    summarize_parser.add_argument("path")
    summarize_parser.set_defaults(func=_cmd_summarize)

    top_parser = sub.add_parser(
        "top", help="live terminal view of a --metrics-port campaign"
    )
    top_parser.add_argument(
        "address",
        help="host:port (or URL) printed by the campaign's --metrics-port",
    )
    top_parser.add_argument(
        "--interval", type=float, default=2.0, help="refresh period (s)"
    )
    top_parser.add_argument(
        "--once", action="store_true", help="print one frame and exit"
    )
    top_parser.set_defaults(func=_cmd_top)

    serve_parser = sub.add_parser(
        "serve",
        help="run the compiler as an HTTP/JSON daemon",
        parents=[telemetry],
    )
    serve_parser.add_argument(
        "--port", type=int, default=8642, help="listen port (0 = ephemeral)"
    )
    serve_parser.add_argument(
        "--host", default="127.0.0.1", help="bind address (loopback default)"
    )
    serve_parser.add_argument(
        "--jobs",
        type=_jobs_arg,
        default=None,
        help="pool worker processes (default: all CPUs)",
    )
    serve_parser.add_argument(
        "--backend",
        default="pool",
        choices=["pool", "inline"],
        help=(
            "pool = warm worker processes with the shared OptForPart "
            "memo, inline = compile in-process (single-core hosts, tests)"
        ),
    )
    serve_parser.add_argument(
        "--memo-dir",
        default=None,
        metavar="DIR",
        help="persist the pool's shared OptForPart memo here",
    )
    serve_parser.add_argument(
        "--artifact-dir",
        default=None,
        metavar="DIR",
        help=(
            "disk layer of the artifact cache: compiled artifacts are "
            "stored content-addressed here and survive daemon restarts"
        ),
    )
    serve_parser.add_argument(
        "--cache-size",
        type=int,
        default=256,
        help="in-memory artifact LRU capacity (default %(default)s)",
    )
    serve_parser.add_argument(
        "--batch-window",
        type=float,
        default=0.02,
        metavar="SECONDS",
        help=(
            "how long the dispatcher gathers concurrent requests into "
            "one pool batch (default %(default)ss)"
        ),
    )
    serve_parser.add_argument(
        "--max-batch",
        type=int,
        default=16,
        help="largest request batch per dispatch round (default %(default)s)",
    )
    serve_parser.add_argument(
        "--retries",
        type=int,
        default=2,
        help="retries per job after a worker error/death (default %(default)s)",
    )
    serve_parser.add_argument(
        "--rate",
        type=float,
        default=None,
        metavar="PER_SECOND",
        help=(
            "token-bucket rate limit; over-limit requests get 429 + "
            "Retry-After (default: unlimited)"
        ),
    )
    serve_parser.add_argument(
        "--burst",
        type=int,
        default=16,
        help="token-bucket burst depth (default %(default)s)",
    )
    serve_parser.add_argument(
        "--request-timeout",
        type=float,
        default=600.0,
        metavar="SECONDS",
        help="504 deadline for one compile request (default %(default)s)",
    )
    serve_parser.set_defaults(func=_cmd_serve)
    return parser


def _run_traced(args) -> int:
    """Execute a command under a telemetry session.

    Builds the sinks requested on the command line, wraps the command
    in a root span, then (when tracing to a file) appends a run
    manifest — config hash of the full invocation, spawned seeds, git
    revision, per-phase timings — and prints the phase breakdown.
    """
    from .experiments import reporting

    memory = obs.MemorySink()
    sinks: list = [memory]
    if args.trace:
        sinks.append(obs.JsonlSink(args.trace))
    if args.verbose:
        sinks.append(obs.StderrSink(verbose=True))

    with obs.session(*sinks):
        with obs.span(f"cli.{args.command}"):
            status = args.func(args)

    summary = obs.summarize.summarize(memory.records)
    if args.trace:
        invocation = {
            key: value
            for key, value in vars(args).items()
            if key not in ("func",)
        }
        manifest = obs.RunManifest.build(
            command=f"repro {args.command}",
            config=invocation,
            base_seed=getattr(args, "seed", None),
            counters=summary.counters,
            phase_timings=summary.phase_timings(),
        )
        for record in memory.events("run.seeded"):
            manifest.add_seed(record.get("attrs", {}))
        manifest.append_to(args.trace)
        print(f"telemetry trace + manifest written to {args.trace}")
    if summary.phases:
        print(reporting.format_phase_timings(summary.phase_timings()))
    return status


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "trace", None) or getattr(args, "verbose", False):
        return _run_traced(args)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
