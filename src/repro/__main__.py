"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``list``
    Show the benchmark suite (Table I).
``compile``
    Compile a benchmark into an approximate LUT, print its report and
    optionally save the configuration / RTL.
``experiment``
    Rerun one of the paper's experiments (table1/table2/fig5/fig6 or an
    ablation) at a chosen scale.
``info``
    Describe a saved configuration file.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from . import AlgorithmConfig, approximate, workloads
from .core import serialize
from .experiments import (
    ExperimentScale,
    run_ablation,
    run_fig5,
    run_fig6,
    run_shared_bits_study,
    run_table1,
    run_table2,
)

_SCALES = {
    "smoke": ExperimentScale.smoke,
    "default": ExperimentScale.default,
    "paper": ExperimentScale.paper,
}

_CONFIGS = {
    "fast": AlgorithmConfig.fast,
    "reduced": AlgorithmConfig.reduced,
    "paper": AlgorithmConfig.paper_bssa,
}


def _cmd_list(_args) -> int:
    print(run_table1(16, build=False).render())
    return 0


def _cmd_compile(args) -> int:
    target = workloads.get(args.benchmark, n_inputs=args.bits)
    config = _CONFIGS[args.budget]()
    if args.seed is not None:
        config = config.with_seed(args.seed)
    print(
        f"compiling {args.benchmark} ({args.bits}-bit) onto "
        f"{args.architecture} with {args.algorithm} ..."
    )
    lut = approximate(
        target,
        architecture=args.architecture,
        algorithm=args.algorithm,
        config=config,
    )
    print(f"MED: {lut.med:.4f}   modes: {lut.mode_counts()}")
    print(lut.hardware().report())
    if args.save:
        serialize.save(lut, args.save)
        print(f"configuration saved to {args.save}")
    if args.verilog:
        with open(args.verilog, "w") as handle:
            handle.write(lut.to_verilog())
        print(f"RTL written to {args.verilog}")
    return 0


def _cmd_experiment(args) -> int:
    scale = _SCALES[args.scale]()
    runners = {
        "table1": lambda: run_table1(scale.n_inputs),
        "table2": lambda: run_table2(scale, base_seed=args.seed or 0),
        "fig5": lambda: run_fig5(scale, base_seed=args.seed or 0),
        "fig6": lambda: run_fig6("cos", scale, base_seed=args.seed or 0),
        "ablation-predictive": lambda: run_ablation("predictive_model", scale),
        "ablation-beam": lambda: run_ablation("beam_width", scale),
        "ablation-sa": lambda: run_ablation("partition_search", scale),
        "shared-bits": lambda: run_shared_bits_study(scale),
    }
    result = runners[args.name]()
    print(result.render())
    return 0


def _cmd_info(args) -> int:
    import json

    with open(args.path) as handle:
        payload = json.load(handle)
    target = payload.get("target", {})
    print(f"file:        {args.path}")
    print(f"format:      {payload.get('format')} v{payload.get('version')}")
    print(
        f"target:      {target.get('name')} "
        f"({target.get('n_inputs')}-in / {target.get('n_outputs')}-out)"
    )
    print(f"architecture: {payload.get('architecture')}")
    print(f"recorded MED: {payload.get('med')}")
    modes: dict = {}
    for setting in payload.get("settings", []):
        modes[setting["mode"]] = modes.get(setting["mode"], 0) + 1
    print(f"modes:       {modes}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__)
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="show the benchmark suite").set_defaults(
        func=_cmd_list
    )

    compile_parser = sub.add_parser("compile", help="compile a benchmark")
    compile_parser.add_argument("benchmark", choices=workloads.names())
    compile_parser.add_argument("--bits", type=int, default=10)
    compile_parser.add_argument(
        "--architecture",
        default="bto-normal-nd",
        choices=["dalta", "bto-normal", "bto-normal-nd"],
    )
    compile_parser.add_argument(
        "--algorithm", default="bs-sa", choices=["bs-sa", "dalta"]
    )
    compile_parser.add_argument(
        "--budget", default="reduced", choices=sorted(_CONFIGS)
    )
    compile_parser.add_argument("--seed", type=int, default=0)
    compile_parser.add_argument("--save", help="write configuration JSON here")
    compile_parser.add_argument("--verilog", help="write RTL here")
    compile_parser.set_defaults(func=_cmd_compile)

    experiment_parser = sub.add_parser(
        "experiment", help="rerun a paper experiment"
    )
    experiment_parser.add_argument(
        "name",
        choices=[
            "table1",
            "table2",
            "fig5",
            "fig6",
            "ablation-predictive",
            "ablation-beam",
            "ablation-sa",
            "shared-bits",
        ],
    )
    experiment_parser.add_argument(
        "--scale", default="default", choices=sorted(_SCALES)
    )
    experiment_parser.add_argument("--seed", type=int)
    experiment_parser.set_defaults(func=_cmd_experiment)

    info_parser = sub.add_parser("info", help="describe a saved configuration")
    info_parser.add_argument("path")
    info_parser.set_defaults(func=_cmd_info)
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())
