"""The serve daemon's HTTP layer.

:class:`ServeHandler` extends the metrics exposition handler with
``POST /compile`` (and a small ``GET /`` API description), so one
hardened :class:`~repro.obs.exposition.HardenedHTTPServer` serves the
compile API and ``/metrics`` + ``/healthz`` + ``/state`` together —
the scrape config that works for campaigns works for the daemon.

Responses are JSON with **sorted keys** — the body is exactly
``json.dumps(envelope, sort_keys=True) + "\\n"``, so clients (and the
golden tests) can byte-compare artifacts::

    {"artifact": {...}, "cached": false, "elapsed_seconds": 0.41,
     "fingerprint": "7de0a211319dfa71", "source": "computed"}

Error statuses: 400 (malformed request), 404 (unknown path or
benchmark), 413 (table too large), 429 (+ ``Retry-After``, rate
limited), 500 (compile failed), 503 (shutting down), 504 (timed out).
"""

from __future__ import annotations

import json
import time
from contextlib import ExitStack
from typing import Any, Dict, Optional, Tuple

from .. import obs
from ..obs import exposition
from ..obs.exposition import MetricsHub, MetricsServer
from .ratelimit import TokenBucket
from .schema import RequestError, parse_compile_request
from .service import CompileService, ServeConfig, ServiceError

__all__ = ["ServeDaemon", "ServeHandler"]

#: largest accepted request body (a 16-bit table of 64k words is ~400 KiB)
MAX_BODY_BYTES = 4 << 20

_API_DOC = {
    "service": "repro serve",
    "endpoints": {
        "POST /compile": "compile a truth table / workload / spec",
        "GET /metrics": "Prometheus text exposition",
        "GET /healthz": "health document",
        "GET /state": "full metrics snapshot",
    },
    "docs": "docs/serving.md",
}


class ServeHandler(exposition._Handler):
    """Exposition handler + the compile API (subclass-injected deps)."""

    service: CompileService
    bucket: Optional[TokenBucket] = None

    def route_get(self, path: str) -> Optional[Tuple[bytes, str]]:
        if path == "/":
            return (
                json.dumps(_API_DOC, sort_keys=True).encode(),
                "application/json",
            )
        routed = super().route_get(path)
        if path == "/state" and routed is not None:
            # graft the queue/cache/pool snapshot onto the hub document
            document = json.loads(routed[0])
            document["serve"] = self.service.state()
            routed = (
                json.dumps(document, sort_keys=True).encode(),
                routed[1],
            )
        return routed

    def _send_json(
        self,
        status: int,
        document: Dict[str, Any],
        extra_headers: Tuple[Tuple[str, str], ...] = (),
    ) -> None:
        body = (json.dumps(document, sort_keys=True) + "\n").encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in extra_headers:
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        if path != "/compile":
            self.send_error(404, "unknown path (POST /compile)")
            return
        started = time.perf_counter()
        if self.bucket is not None:
            allowed, retry_after = self.bucket.try_acquire()
            if not allowed:
                obs.incr("serve.throttled")
                self._send_json(
                    429,
                    {
                        "error": "rate limited",
                        "retry_after": round(retry_after, 3),
                    },
                    extra_headers=(
                        ("Retry-After", str(max(1, int(retry_after + 0.5)))),
                    ),
                )
                return
        try:
            length = int(self.headers.get("Content-Length") or 0)
        except ValueError:
            length = 0
        if length <= 0:
            self._send_json(400, {"error": "a JSON request body is required"})
            return
        if length > MAX_BODY_BYTES:
            self._send_json(
                413, {"error": f"request body over {MAX_BODY_BYTES} bytes"}
            )
            return
        try:
            document = json.loads(self.rfile.read(length))
        except (json.JSONDecodeError, UnicodeDecodeError):
            self._send_json(400, {"error": "request body is not valid JSON"})
            return
        try:
            request = parse_compile_request(document)
        except RequestError as exc:
            self._send_json(exc.status, {"error": str(exc)})
            return
        try:
            payload, source = self.service.submit(request).result(
                self.service.config.request_timeout
            )
        except ServiceError as exc:
            self._send_json(exc.status, {"error": str(exc)})
            return
        elapsed = time.perf_counter() - started
        self.service.record_request(elapsed)
        self._send_json(
            200,
            {
                "artifact": payload,
                "cached": source in ("memory", "disk"),
                "source": source,
                "fingerprint": payload["fingerprint"],
                "elapsed_seconds": round(elapsed, 6),
            },
        )


class ServeDaemon:
    """Wires service + hub + HTTP server into one start/stop lifecycle.

    ::

        with ServeDaemon(ServeConfig(backend="inline"), port=0) as daemon:
            print(daemon.url)  # POST {url}/compile

    When no telemetry session is active one is opened on a
    :class:`~repro.obs.sinks.NullSink` so ``serve.*`` counters and the
    request-latency histogram exist for ``/metrics`` — the same
    pattern the campaign engine uses for ``--metrics-port``.
    """

    def __init__(
        self,
        config: ServeConfig,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.config = config
        self._requested = (host, port)
        self._stack: Optional[ExitStack] = None
        self.hub: Optional[MetricsHub] = None
        self.service: Optional[CompileService] = None
        self.server: Optional[MetricsServer] = None

    @property
    def url(self) -> str:
        if self.server is None:
            raise RuntimeError("daemon is not running")
        return self.server.url

    def start(self) -> "ServeDaemon":
        if self._stack is not None:
            raise RuntimeError("daemon already started")
        host, port = self._requested
        stack = ExitStack()
        try:
            if obs.current() is None:
                stack.enter_context(obs.session(obs.NullSink()))
            self.hub = MetricsHub(telemetry=obs.current())
            stack.enter_context(exposition.activated(self.hub))
            self.service = CompileService(self.config, hub=self.hub)
            stack.enter_context(self.service)
            bucket = (
                TokenBucket(self.config.rate, self.config.burst)
                if self.config.rate is not None
                else None
            )
            handler = type(
                "_BoundServeHandler",
                (ServeHandler,),
                {"service": self.service, "bucket": bucket},
            )
            self.server = MetricsServer(
                self.hub, port=port, host=host, handler_base=handler
            )
            stack.enter_context(self.server)
        except BaseException:
            stack.close()
            self.hub = self.service = self.server = None
            raise
        self._stack = stack
        return self

    def stop(self) -> None:
        if self._stack is None:
            return
        stack, self._stack = self._stack, None
        try:
            stack.close()
        finally:
            self.hub = self.service = self.server = None

    def __enter__(self) -> "ServeDaemon":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    def serve_forever(self) -> None:
        """Block until interrupted (the CLI's foreground mode)."""
        try:
            while True:
                time.sleep(3600)
        except KeyboardInterrupt:
            pass
