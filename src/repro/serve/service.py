"""The serve daemon's compile queue: coalescing, batching, execution.

Request flow
------------

``submit()`` (called from HTTP handler threads) checks the artifact
cache, then the in-flight table — a request whose fingerprint is
already queued or executing *coalesces* onto the existing job and
shares its result — and otherwise enqueues a new job.

A single dispatcher thread drains the queue: it gathers up to
``max_batch`` jobs inside a ``batch_window`` and executes the batch on
the backend — the warm :class:`WorkerPool` (jobs fan out across
persistent workers sharing the ``TableArena`` and OptForPart memo) or
``"inline"`` (in-process, for tests and single-core hosts).  With
``fuse_batches`` on (the default) a gathered batch ships as *fused*
pool jobs — the batch is split contiguously across the idle workers
and each group runs as one ``run_specs_fused`` call, merging the
specs' kernel batches into wide grouped ``OptForPart`` passes (see
``docs/performance.md``, "Cross-layer kernel fusion") while every
result stays byte-identical to individual dispatch.  Worker deaths
and errors are retried up to ``max_retries`` times; a failed fused
group falls back to individual submission, each member charged one
retry — the pool replaces dead workers itself, so a mid-batch kill
costs retries, not the daemon.

Everything the dispatcher computes goes through
:func:`repro.compile_api.artifact_from_result` — the same code path
as offline ``repro compile`` — and lands in the
:class:`~repro.serve.cache.ArtifactCache` before any future resolves,
so concurrent duplicates and later requests all see one byte-identical
artifact.

Only the dispatcher thread touches the pool (the ``WorkerPool`` is
not thread-safe); handler threads only touch the queue, the cache and
the in-flight table, each behind its lock.
"""

from __future__ import annotations

import dataclasses
import json
import queue
import threading
import time
from typing import Any, Dict, List, Optional, Tuple

from .. import compile_api, obs
from ..experiments.engine import result_from_payload
from ..experiments.parallel import run_specs_fused
from ..experiments.pool import WorkerPool
from ..obs.exposition import MetricsHub
from .cache import ArtifactCache
from .schema import CompileRequest

__all__ = ["CompileService", "ServeConfig", "ServiceError"]


class ServiceError(Exception):
    """A request that cannot be served; ``status`` is the HTTP code."""

    def __init__(self, message: str, status: int = 500) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass(frozen=True)
class ServeConfig:
    """Daemon knobs (CLI flags map one-to-one onto these fields)."""

    jobs: int = 2
    backend: str = "pool"
    memo_dir: Optional[str] = None
    artifact_dir: Optional[str] = None
    cache_size: int = 256
    batch_window: float = 0.02
    max_batch: int = 16
    max_retries: int = 2
    fuse_batches: bool = True
    rate: Optional[float] = None
    burst: int = 16
    request_timeout: float = 600.0

    def __post_init__(self) -> None:
        if self.backend not in ("pool", "inline"):
            raise ValueError(
                f"unknown backend {self.backend!r}; "
                "choose 'pool' or 'inline'"
            )
        if self.jobs < 1:
            raise ValueError("jobs must be >= 1")
        if self.cache_size < 1:
            raise ValueError("cache_size must be >= 1")
        if self.max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        if self.batch_window < 0:
            raise ValueError("batch_window must be >= 0")
        if self.max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if self.rate is not None and self.rate <= 0:
            raise ValueError("rate must be positive")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")
        if self.request_timeout <= 0:
            raise ValueError("request_timeout must be positive")


class CompileFuture:
    """One caller's pending result (shared by coalesced requests)."""

    def __init__(self) -> None:
        self._done = threading.Event()
        self._payload: Optional[Dict[str, Any]] = None
        self._source = "computed"
        self._error: Optional[Tuple[int, str]] = None

    def _resolve(self, payload: Dict[str, Any], source: str) -> None:
        self._payload = payload
        self._source = source
        self._done.set()

    def _fail(self, status: int, message: str) -> None:
        self._error = (status, message)
        self._done.set()

    def result(
        self, timeout: Optional[float] = None
    ) -> Tuple[Dict[str, Any], str]:
        """Block for the artifact; returns ``(payload, source)``.

        ``source`` is ``"memory"`` / ``"disk"`` (cache hit),
        ``"coalesced"`` (shared an in-flight computation) or
        ``"computed"``.
        """
        if not self._done.wait(timeout):
            raise ServiceError("compile timed out", status=504)
        if self._error is not None:
            raise ServiceError(self._error[1], status=self._error[0])
        assert self._payload is not None
        return self._payload, self._source


class _Job:
    __slots__ = ("request", "key", "futures", "attempts")

    def __init__(self, request: CompileRequest, future: CompileFuture) -> None:
        self.request = request
        self.key = request.fingerprint
        self.futures: List[CompileFuture] = [future]
        self.attempts = 0


class CompileService:
    """Owns the cache, the queue, the dispatcher and the backend."""

    def __init__(
        self, config: ServeConfig, hub: Optional[MetricsHub] = None
    ) -> None:
        self.config = config
        self.hub = hub
        self.cache = ArtifactCache(
            capacity=config.cache_size, artifact_dir=config.artifact_dir
        )
        self._queue: "queue.Queue[_Job]" = queue.Queue()
        self._inflight: Dict[str, _Job] = {}
        self._lock = threading.Lock()
        self._metrics_lock = threading.Lock()
        self._stopping = threading.Event()
        self._pool: Optional[WorkerPool] = None
        self._thread: Optional[threading.Thread] = None
        self.requests = 0
        self.completed = 0
        self.failed = 0
        #: last pool snapshot, refreshed by the dispatcher after each
        #: batch (the pool itself is single-owner and must not be
        #: touched from handler threads)
        self._pool_stats: Optional[Dict[str, Any]] = None

    # -- lifecycle -----------------------------------------------------
    def start(self) -> "CompileService":
        if self._thread is not None:
            raise RuntimeError("service already started")
        if self.config.backend == "pool":
            self._pool = WorkerPool(
                self.config.jobs, memo_dir=self.config.memo_dir
            )
        self._campaign_update(state="serving", running=0)
        self._thread = threading.Thread(
            target=self._dispatch_loop, name="repro-serve-dispatch", daemon=True
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        if self._thread is None:
            return
        self._stopping.set()
        self._thread.join(timeout=30)
        self._thread = None
        # Fail anything still queued — handler threads must not hang.
        while True:
            try:
                job = self._queue.get_nowait()
            except queue.Empty:
                break
            self._finish_error(job, 503, "server shutting down")
        if self._pool is not None:
            self._pool.close()
            self._pool = None
        self._campaign_update(state="stopped", running=0)

    def __enter__(self) -> "CompileService":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()

    # -- request side (handler threads) --------------------------------
    def submit(self, request: CompileRequest) -> CompileFuture:
        """Resolve from cache, coalesce onto an in-flight job, or enqueue."""
        key = request.fingerprint
        future = CompileFuture()
        with self._lock:
            self.requests += 1
            obs.incr("serve.requests")
        cached = self.cache.get(key)
        if cached is not None:
            payload, layer = cached
            future._resolve(payload, layer)
            return future
        with self._lock:
            if self._stopping.is_set():
                future._fail(503, "server shutting down")
                return future
            job = self._inflight.get(key)
            if job is not None:
                job.futures.append(future)
                future._source = "coalesced"
                obs.incr("serve.coalesced")
                return future
            job = _Job(request, future)
            self._inflight[key] = job
        self._queue.put(job)
        return future

    def record_request(self, elapsed_seconds: float) -> None:
        """Observe one HTTP request's latency (called by the daemon)."""
        with self._metrics_lock:
            obs.observe("serve.request_seconds", elapsed_seconds)

    def state(self) -> Dict[str, Any]:
        """Service block for ``/state`` consumers and tests."""
        with self._lock:
            inflight = len(self._inflight)
            pool_stats = self._pool_stats
            counts = {
                "requests": self.requests,
                "completed": self.completed,
                "failed": self.failed,
            }
        state = {
            "backend": self.config.backend,
            "jobs": self.config.jobs,
            "inflight": inflight,
            "cache": self.cache.stats(),
            **counts,
        }
        if pool_stats is not None:
            state["pool"] = pool_stats
        return state

    # -- dispatcher ----------------------------------------------------
    def _campaign_update(self, **fields: Any) -> None:
        if self.hub is not None:
            self.hub.campaign_update(
                experiment="serve", backend=self.config.backend, **fields
            )

    def _refresh_pool_stats(self) -> None:
        """Snapshot the pool for ``/state`` readers (dispatcher only).

        Also called on idle dispatcher ticks: ``/healthz`` and
        ``/state`` previously served the snapshot from the *last batch*
        indefinitely, so a worker that died while the queue was empty
        kept reporting as alive until the next compile arrived.
        """
        if self._pool is None:
            return
        stats = self._pool.stats()
        with self._lock:
            self._pool_stats = stats

    def _dispatch_loop(self) -> None:
        while True:
            try:
                job = self._queue.get(timeout=0.05)
            except queue.Empty:
                if self._stopping.is_set():
                    return
                self._refresh_pool_stats()
                continue
            batch = [job]
            deadline = time.monotonic() + self.config.batch_window
            while len(batch) < self.config.max_batch:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                try:
                    batch.append(self._queue.get(timeout=remaining))
                except queue.Empty:
                    break
            self._execute_batch(batch)

    def _execute_batch(self, batch: List[_Job]) -> None:
        obs.incr("serve.batches")
        obs.observe("serve.batch_size", len(batch))
        if len(batch) > 1:
            obs.incr("serve.batched_jobs", len(batch))
        self._campaign_update(running=len(batch))
        if self._pool is not None:
            results = self._run_pool_batch(batch)
        else:
            results = self._run_inline_batch(batch)
        for job in batch:
            outcome = results.get(job.key)
            if isinstance(outcome, Exception):
                self._finish_error(job, 500, f"compile failed: {outcome}")
            elif outcome is None:
                self._finish_error(job, 500, "compile produced no result")
            else:
                self.cache.put(job.key, outcome)
                self._finish_ok(job, outcome)
        self._refresh_pool_stats()
        self._campaign_update(running=0)

    def _run_inline_batch(self, batch: List[_Job]) -> Dict[str, Any]:
        results: Dict[str, Any] = {}
        if self.config.fuse_batches and len(batch) > 1:
            obs.incr("serve.fusion_batched")
            obs.observe("serve.fused_batch_size", len(batch))
            outcomes = run_specs_fused([job.request.spec for job in batch])
            for job, (status, value) in zip(batch, outcomes):
                if status != "ok":
                    results[job.key] = RuntimeError(value)
                    continue
                try:
                    artifact = compile_api.artifact_from_result(
                        job.request.spec, value
                    )
                    results[job.key] = artifact.payload
                    obs.incr("serve.executed")
                except Exception as exc:
                    results[job.key] = exc
            return results
        for job in batch:
            try:
                result = job.request.spec.execute()
                artifact = compile_api.artifact_from_result(
                    job.request.spec, result
                )
                results[job.key] = artifact.payload
                obs.incr("serve.executed")
            except Exception as exc:  # resolve the future, keep serving
                results[job.key] = exc
        return results

    def _absorb_member(
        self, job: _Job, payload: Dict[str, Any]
    ) -> Dict[str, Any]:
        """Worker result payload → cached artifact payload.

        Same canonicalising round-trip the campaign engine performs on
        checkpoint payloads; raises on anything malformed so callers
        can charge a retry.
        """
        canonical = json.loads(
            json.dumps(payload, sort_keys=True, default=str)
        )
        result = result_from_payload(job.request.spec, canonical)
        artifact = compile_api.artifact_from_result(job.request.spec, result)
        return artifact.payload

    def _run_fused_phase(
        self,
        batch: List[_Job],
        results: Dict[str, Any],
        attempts: List[int],
    ) -> List[int]:
        """Ship the gathered batch as fused pool jobs, one per idle worker.

        The batch is split contiguously across the idle workers; each
        group runs as a single :meth:`WorkerPool.submit_fused` job, so
        the member specs' kernel batches merge into wide grouped
        ``OptForPart`` passes inside the worker.  Members the fused
        pass could not resolve — the group's worker died, the group
        errored wholesale, or one member raised inside it — are each
        charged one retry and handed back for individual submission,
        so a mid-batch worker kill keeps the unfused path's retry
        accounting.
        """
        assert self._pool is not None
        pool = self._pool
        idle = len(pool.idle_workers())
        if idle < 1:  # pragma: no cover - dispatcher drains every batch
            return list(range(len(batch)))
        n_groups = min(len(batch), idle)
        groups: List[List[int]] = []
        base, extra = divmod(len(batch), n_groups)
        start = 0
        for g in range(n_groups):
            size = base + (1 if g < extra else 0)
            groups.append(list(range(start, start + size)))
            start += size
        leftover: List[int] = []

        def fall_back(member: int, detail: str) -> None:
            attempts[member] += 1
            if attempts[member] > self.config.max_retries:
                results[batch[member].key] = RuntimeError(detail)
                obs.incr("serve.errors")
            else:
                obs.incr("serve.retries")
                leftover.append(member)

        for g, members in enumerate(groups):
            pool.submit_fused(g, [batch[i].request.spec for i in members])
            obs.incr("serve.fusion_batched")
            obs.observe("serve.fused_batch_size", len(members))
        outstanding = set(range(n_groups))
        while outstanding:
            for event in pool.wait(0.05):
                outstanding.discard(event.index)
                members = groups[event.index]
                entries: Optional[List[Any]] = None
                if event.kind == "ok" and event.payload is not None:
                    got = event.payload.get("fused")
                    if isinstance(got, list) and len(got) == len(members):
                        entries = got
                if entries is None:
                    if event.kind == "error":
                        detail = f"worker raised: {event.detail}"
                    elif event.kind == "died":
                        detail = f"worker died (exit {event.exitcode})"
                    else:
                        detail = "worker returned a corrupt payload"
                    for member in members:
                        fall_back(member, detail)
                    continue
                for member, entry in zip(members, entries):
                    job = batch[member]
                    error = entry.get("error")
                    if error is not None:
                        fall_back(member, f"worker raised: {error}")
                        continue
                    try:
                        results[job.key] = self._absorb_member(
                            job, entry["ok"]
                        )
                        obs.incr("serve.executed")
                    except Exception as exc:
                        fall_back(member, f"invalid worker payload: {exc}")
        return leftover

    def _run_pool_batch(self, batch: List[_Job]) -> Dict[str, Any]:
        assert self._pool is not None
        pool = self._pool
        results: Dict[str, Any] = {}
        attempts = [0] * len(batch)
        if self.config.fuse_batches and len(batch) > 1:
            pending = self._run_fused_phase(batch, results, attempts)
        else:
            pending = list(range(len(batch)))
        active: Dict[int, _Job] = {}
        remaining = len(batch) - len(results)
        last_error: Dict[int, str] = {}

        def retry(index: int, detail: str) -> None:
            nonlocal remaining
            attempts[index] += 1
            last_error[index] = detail
            if attempts[index] > self.config.max_retries:
                results[batch[index].key] = RuntimeError(detail)
                remaining -= 1
                obs.incr("serve.errors")
            else:
                obs.incr("serve.retries")
                pending.append(index)

        while remaining:
            while pending and pool.has_idle():
                index = pending.pop(0)
                job = batch[index]
                pool.submit(index, job.request.spec, attempt=attempts[index])
                active[index] = job
            for event in pool.wait(0.05):
                job = active.pop(event.index)
                if event.kind == "ok" and event.payload is not None:
                    try:
                        results[job.key] = self._absorb_member(
                            job, event.payload
                        )
                        remaining -= 1
                        obs.incr("serve.executed")
                    except Exception as exc:
                        retry(event.index, f"invalid worker payload: {exc}")
                elif event.kind == "ok":
                    retry(event.index, "worker returned a corrupt payload")
                elif event.kind == "error":
                    retry(event.index, f"worker raised: {event.detail}")
                else:
                    retry(
                        event.index,
                        f"worker died (exit {event.exitcode})",
                    )
        return results

    # -- completion ----------------------------------------------------
    def _pop_job(self, job: _Job) -> List[CompileFuture]:
        with self._lock:
            self._inflight.pop(job.key, None)
            return list(job.futures)

    def _finish_ok(self, job: _Job, payload: Dict[str, Any]) -> None:
        futures = self._pop_job(job)
        with self._lock:
            self.completed += 1
        self._campaign_update(
            total=self.requests, done=self.completed
        )
        for future in futures:
            future._resolve(payload, future._source)

    def _finish_error(self, job: _Job, status: int, message: str) -> None:
        futures = self._pop_job(job)
        with self._lock:
            self.failed += 1
        obs.incr("serve.failed_requests", len(futures))
        for future in futures:
            future._fail(status, message)
