"""Typed request schema for ``POST /compile``.

Three request forms, dispatched on which key is present (exactly one
of ``table`` / ``benchmark`` / ``spec``):

raw truth table::

    {"table": [0, 1, 3, 2], "n_outputs": 2, "name": "gray2"}

registered workload::

    {"benchmark": "cos", "bits": 10}

full spec (a ``RunSpec`` equivalent, e.g. replayed from a campaign
checkpoint — the search ``architecture`` and full ``config`` travel
inside it)::

    {"spec": {"algorithm": "bs-sa", "table": [...], "n_inputs": 2,
              "n_outputs": 2, "name": "gray2", "config": {...},
              "architecture": "bto-normal-nd", "direct_seed": 0}}

The first two forms also accept ``architecture`` / ``algorithm`` /
``budget`` / ``seed`` knobs (defaults match ``repro compile``).  The
spec form derives the hardware architecture from the spec's search
architecture instead — the same bijection ``compile_api`` uses — so
one fingerprint always names one artifact.

All validation failures raise :class:`RequestError` carrying the HTTP
status the daemon should answer with; nothing here touches the
network.
"""

from __future__ import annotations

import dataclasses
import re
from typing import Any, Dict, Optional

from .. import compile_api
from ..core.compiler import ALGORITHMS, ARCHITECTURES
from ..core.config import AlgorithmConfig
from ..experiments.parallel import RunSpec
from ..workloads import names as workload_names

__all__ = ["CompileRequest", "RequestError", "parse_compile_request"]

_NAME_RE = re.compile(r"^[A-Za-z0-9_.\-]{1,64}$")

_COMMON_KEYS = {"architecture", "algorithm", "budget", "seed"}
_FORM_KEYS = {
    "table": {"table", "n_outputs", "name"} | _COMMON_KEYS,
    "benchmark": {"benchmark", "bits"} | _COMMON_KEYS,
    "spec": {"spec"},
}
_SPEC_KEYS = {
    "algorithm",
    "table",
    "n_inputs",
    "n_outputs",
    "name",
    "config",
    "base_seed",
    "spawn_index",
    "architecture",
    "direct_seed",
}
_SEARCH_ARCHITECTURES = ("normal", "bto-normal", "bto-normal-nd")
_CONFIG_FIELDS = {field.name for field in dataclasses.fields(AlgorithmConfig)}


class RequestError(Exception):
    """A malformed or unserviceable request; ``status`` is the HTTP code."""

    def __init__(self, message: str, status: int = 400) -> None:
        super().__init__(message)
        self.status = status


@dataclasses.dataclass
class CompileRequest:
    """A validated request, ready for the service queue."""

    spec: RunSpec
    form: str  # "table" | "benchmark" | "spec"

    @property
    def fingerprint(self) -> str:
        return self.spec.fingerprint()

    @property
    def architecture(self) -> str:
        return compile_api.requested_architecture(self.spec)


def _require(document: Dict[str, Any], key: str, kinds, form: str) -> Any:
    value = document.get(key)
    if not isinstance(value, kinds) or isinstance(value, bool):
        raise RequestError(
            f"{form} request: {key!r} must be "
            f"{getattr(kinds, '__name__', kinds)}"
        )
    return value


def _int_knob(
    document: Dict[str, Any], key: str, default: Optional[int]
) -> Optional[int]:
    value = document.get(key, default)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, int):
        raise RequestError(f"{key!r} must be an integer")
    return value


def _reject_unknown(document: Dict[str, Any], form: str) -> None:
    unknown = sorted(set(document) - _FORM_KEYS[form])
    if unknown:
        raise RequestError(f"{form} request: unknown keys {unknown}")


def _check_name(name: Any) -> Optional[str]:
    if name is None:
        return None
    if not isinstance(name, str) or not _NAME_RE.match(name):
        raise RequestError(
            "name must match [A-Za-z0-9_.-]{1,64}",
        )
    return name


def _table_values(raw: Any, context: str) -> list:
    if not isinstance(raw, list) or not raw:
        raise RequestError(f"{context}: table must be a non-empty array")
    values = []
    for item in raw:
        if isinstance(item, bool) or not isinstance(item, int):
            raise RequestError(f"{context}: table entries must be integers")
        values.append(item)
    return values


def _common_knobs(document: Dict[str, Any]) -> Dict[str, Any]:
    architecture = document.get("architecture", "bto-normal-nd")
    if architecture not in ARCHITECTURES:
        raise RequestError(
            f"unknown architecture {architecture!r}; "
            f"choose from {list(ARCHITECTURES)}"
        )
    algorithm = document.get("algorithm", "bs-sa")
    if algorithm not in ALGORITHMS:
        raise RequestError(
            f"unknown algorithm {algorithm!r}; choose from {list(ALGORITHMS)}"
        )
    budget = document.get("budget", "reduced")
    if budget not in compile_api.BUDGETS:
        raise RequestError(
            f"unknown budget {budget!r}; "
            f"choose from {sorted(compile_api.BUDGETS)}"
        )
    seed = _int_knob(document, "seed", 0)
    if seed is None:
        raise RequestError("seed must be an integer")
    return {
        "architecture": architecture,
        "algorithm": algorithm,
        "config": compile_api.budget_config(budget, seed),
    }


def _parse_table_form(document: Dict[str, Any]) -> CompileRequest:
    _reject_unknown(document, "table")
    knobs = _common_knobs(document)
    values = _table_values(document["table"], "table request")
    if len(values) > (1 << compile_api.MAX_TABLE_BITS):
        raise RequestError(
            f"table too large: {len(values)} rows "
            f"(limit {1 << compile_api.MAX_TABLE_BITS})",
            status=413,
        )
    n_outputs = _require(document, "n_outputs", int, "table")
    try:
        target = compile_api.build_target(
            table=values,
            n_outputs=n_outputs,
            name=_check_name(document.get("name")),
        )
        spec = compile_api.build_run_spec(
            target, knobs["architecture"], knobs["algorithm"], knobs["config"]
        )
    except ValueError as exc:
        raise RequestError(str(exc))
    return CompileRequest(spec=spec, form="table")


def _parse_benchmark_form(document: Dict[str, Any]) -> CompileRequest:
    _reject_unknown(document, "benchmark")
    knobs = _common_knobs(document)
    benchmark = document["benchmark"]
    if benchmark not in workload_names():
        raise RequestError(
            f"unknown benchmark {benchmark!r}; "
            f"choose from {workload_names()}",
            status=404,
        )
    bits = _int_knob(document, "bits", 10)
    if bits is None or not (2 <= bits <= compile_api.MAX_TABLE_BITS):
        raise RequestError(
            f"bits must be an integer in [2, {compile_api.MAX_TABLE_BITS}]"
        )
    try:
        target = compile_api.build_target(benchmark, bits=bits)
        spec = compile_api.build_run_spec(
            target, knobs["architecture"], knobs["algorithm"], knobs["config"]
        )
    except ValueError as exc:
        raise RequestError(str(exc))
    return CompileRequest(spec=spec, form="benchmark")


def _parse_spec_form(document: Dict[str, Any]) -> CompileRequest:
    unknown = sorted(set(document) - _FORM_KEYS["spec"])
    if unknown:
        raise RequestError(
            f"spec request: unknown keys {unknown} (the architecture, "
            "config and seeding all travel inside the spec)"
        )
    fields = document["spec"]
    if not isinstance(fields, dict):
        raise RequestError("spec must be an object")
    unknown = sorted(set(fields) - _SPEC_KEYS)
    if unknown:
        raise RequestError(f"spec: unknown keys {unknown}")
    missing = sorted(
        {"algorithm", "table", "n_inputs", "n_outputs", "config"} - set(fields)
    )
    if missing:
        raise RequestError(f"spec: missing keys {missing}")

    algorithm = fields["algorithm"]
    if algorithm not in ALGORITHMS:
        raise RequestError(
            f"unknown algorithm {algorithm!r}; choose from {list(ALGORITHMS)}"
        )
    architecture = fields.get("architecture", "bto-normal-nd")
    if architecture not in _SEARCH_ARCHITECTURES:
        raise RequestError(
            f"spec: unknown search architecture {architecture!r}; "
            f"choose from {list(_SEARCH_ARCHITECTURES)}"
        )
    config_fields = fields["config"]
    if not isinstance(config_fields, dict):
        raise RequestError("spec: config must be an object")
    unknown = sorted(set(config_fields) - _CONFIG_FIELDS)
    if unknown:
        raise RequestError(f"spec: unknown config keys {unknown}")
    try:
        config = AlgorithmConfig(**config_fields)
    except (TypeError, ValueError) as exc:
        raise RequestError(f"spec: invalid config: {exc}")

    values = _table_values(fields["table"], "spec")
    n_inputs = _require(fields, "n_inputs", int, "spec")
    if not (1 <= n_inputs <= compile_api.MAX_TABLE_BITS):
        raise RequestError(
            f"spec: n_inputs must be in [1, {compile_api.MAX_TABLE_BITS}]"
        )
    if len(values) != (1 << n_inputs):
        raise RequestError(
            f"spec: table has {len(values)} rows, "
            f"expected {1 << n_inputs} for n_inputs={n_inputs}"
        )
    n_outputs = _require(fields, "n_outputs", int, "spec")
    name = _check_name(fields.get("name")) or ""
    base_seed = _int_knob(fields, "base_seed", None)
    direct_seed = _int_knob(fields, "direct_seed", None)
    if base_seed is None and direct_seed is None:
        # SeedSequence(None) draws OS entropy — a request that cannot
        # reproduce (or be content-addressed) is a caller bug.
        raise RequestError("spec: give base_seed or direct_seed")
    spawn_index = _int_knob(fields, "spawn_index", 0)
    if spawn_index is None or spawn_index < 0:
        raise RequestError("spec: spawn_index must be a non-negative integer")
    try:
        spec = RunSpec(
            algorithm,
            values,
            n_inputs,
            n_outputs,
            name,
            config,
            base_seed=base_seed,
            spawn_index=spawn_index,
            architecture=architecture,
            direct_seed=direct_seed,
        )
        spec.target_function()  # validates table shape/range
    except ValueError as exc:
        raise RequestError(f"spec: {exc}")
    return CompileRequest(spec=spec, form="spec")


def parse_compile_request(document: Any) -> CompileRequest:
    """Validate a decoded ``POST /compile`` body into a request."""
    if not isinstance(document, dict):
        raise RequestError("request body must be a JSON object")
    forms = [form for form in _FORM_KEYS if form in document]
    if len(forms) != 1:
        raise RequestError(
            "give exactly one of 'table', 'benchmark' or 'spec' "
            f"(got {sorted(forms) or 'none'})"
        )
    parser = {
        "table": _parse_table_form,
        "benchmark": _parse_benchmark_form,
        "spec": _parse_spec_form,
    }[forms[0]]
    return parser(document)
