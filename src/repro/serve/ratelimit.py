"""Token-bucket rate limiting for the serve daemon.

Classic continuous-refill bucket: ``rate`` tokens/second accrue up to
a ``burst`` ceiling; a request costs one token.  When the bucket is
dry, :meth:`TokenBucket.try_acquire` reports how long until the next
token — the daemon turns that into ``429`` with a ``Retry-After``
header.  The clock is injectable so the tests are deterministic.
"""

from __future__ import annotations

import threading
import time
from typing import Callable, Tuple

__all__ = ["TokenBucket"]


class TokenBucket:
    """Thread-safe token bucket (``rate`` per second, ``burst`` deep)."""

    def __init__(
        self,
        rate: float,
        burst: int = 16,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise ValueError("rate must be positive")
        if burst < 1:
            raise ValueError("burst must be >= 1")
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._tokens = self.burst
        self._updated = clock()
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        elapsed = max(now - self._updated, 0.0)
        self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_acquire(self, cost: float = 1.0) -> Tuple[bool, float]:
        """Take ``cost`` tokens if available.

        Returns ``(True, 0.0)`` on success, else ``(False, retry_after)``
        where ``retry_after`` is the seconds until the bucket will hold
        ``cost`` tokens again.
        """
        with self._lock:
            self._refill(self._clock())
            if self._tokens >= cost:
                self._tokens -= cost
                return True, 0.0
            return False, (cost - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        with self._lock:
            self._refill(self._clock())
            return self._tokens
