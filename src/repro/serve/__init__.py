"""``repro serve`` — the compiler as a long-lived HTTP/JSON daemon.

The pieces, bottom-up:

:mod:`repro.serve.schema`
    ``POST /compile`` request parsing: raw truth table, registered
    workload name, or full :class:`RunSpec`-equivalent spec, each with
    architecture / algorithm / budget / seed knobs.
:mod:`repro.serve.cache`
    Content-addressed artifact cache keyed by ``RunSpec.fingerprint()``
    — a lock-guarded in-memory LRU plus an optional ``--artifact-dir``
    disk layer that survives daemon restarts.
:mod:`repro.serve.ratelimit`
    A token bucket backing 429 + ``Retry-After``.
:mod:`repro.serve.service`
    The queue: concurrent requests coalesce into batches executed on
    the warm :class:`WorkerPool` (or in-process, ``backend="inline"``),
    identical in-flight fingerprints share one computation.
:mod:`repro.serve.daemon`
    The HTTP layer, mounted on the hardened
    :mod:`repro.obs.exposition` server so ``/metrics``, ``/healthz``
    and ``/state`` come along for free.

Served artifacts are byte-identical to offline ``repro compile``
output — CLI and daemon share :func:`repro.compile_api.compile_one`'s
code path, and the differential suite in ``tests/serve/`` pins it.
See ``docs/serving.md``.
"""

from .cache import ArtifactCache
from .daemon import ServeDaemon
from .ratelimit import TokenBucket
from .schema import CompileRequest, RequestError, parse_compile_request
from .service import CompileService, ServeConfig, ServiceError

__all__ = [
    "ArtifactCache",
    "CompileRequest",
    "CompileService",
    "RequestError",
    "ServeConfig",
    "ServeDaemon",
    "ServiceError",
    "TokenBucket",
    "parse_compile_request",
]
