"""Content-addressed compiled-artifact cache for the serve daemon.

Two layers, both keyed by ``RunSpec.fingerprint()`` (the sha256 content
digest over the truth table + full algorithm descriptor — see
:meth:`RunSpec.fingerprint`):

* an in-memory :class:`repro.caching.LruCache` (``serve.artifacts``,
  aggregate counters ``serve.cache_hit`` / ``serve.cache_miss``),
  guarded by a lock because HTTP handler threads and the dispatcher
  all read it — the LRU itself is single-threaded by design;
* an optional disk layer (``--artifact-dir``): one
  ``<fingerprint>.json`` per artifact, written atomically, read back
  on a memory miss and promoted into the LRU.  This is what lets a
  restarted daemon keep serving cache hits.

The memory cache is created with ``register=False`` so the per-run
``caching.clear_caches()`` performed by the inline backend's
:meth:`RunSpec.execute` cannot wipe it between requests.

Artifacts are deterministic JSON documents (see
:mod:`repro.compile_api`), so a disk entry loaded by a later daemon is
byte-identical to the response the first daemon served.
"""

from __future__ import annotations

import json
import os
import threading
from typing import Any, Dict, Optional, Tuple

from .. import obs
from ..caching import LruCache
from ..experiments.store import atomic_write_json

__all__ = ["ArtifactCache"]


class ArtifactCache:
    """Thread-safe memory LRU + optional disk layer for artifacts."""

    def __init__(
        self, capacity: int = 256, artifact_dir: Optional[str] = None
    ) -> None:
        self._lock = threading.Lock()
        self._memory = LruCache(
            "serve.artifacts",
            capacity,
            aggregate="serve.cache",
            register=False,
        )
        self.artifact_dir = artifact_dir
        self.disk_hits = 0
        self.disk_writes = 0
        if artifact_dir is not None:
            os.makedirs(artifact_dir, exist_ok=True)

    def _path(self, key: str) -> str:
        return os.path.join(self.artifact_dir, f"{key}.json")

    def _read_disk(self, key: str) -> Optional[Dict[str, Any]]:
        try:
            with open(self._path(key)) as handle:
                payload = json.load(handle)
        except (OSError, json.JSONDecodeError):
            return None
        # A renamed/corrupted file must never serve the wrong artifact.
        if (
            not isinstance(payload, dict)
            or payload.get("fingerprint") != key
        ):
            return None
        return payload

    def get(self, key: str) -> Optional[Tuple[Dict[str, Any], str]]:
        """Look ``key`` up; returns ``(payload, "memory"|"disk")``."""
        with self._lock:
            payload = self._memory.get(key)
            if payload is not None:
                return payload, "memory"
            if self.artifact_dir is None:
                return None
            payload = self._read_disk(key)
            if payload is None:
                return None
            # Promote without journalling or double-counting the miss
            # the LruCache just recorded.
            self._memory.import_entries([(key, payload)])
            self.disk_hits += 1
        if obs.enabled():
            obs.incr("serve.artifact_disk_hit")
        return payload, "disk"

    def put(self, key: str, payload: Dict[str, Any]) -> None:
        wrote = False
        with self._lock:
            self._memory.put(key, payload)
            if self.artifact_dir is not None:
                path = self._path(key)
                if not os.path.exists(path):
                    atomic_write_json(path, payload)
                    self.disk_writes += 1
                    wrote = True
        if wrote and obs.enabled():
            obs.incr("serve.artifact_disk_write")

    def __len__(self) -> int:
        with self._lock:
            return len(self._memory)

    def stats(self) -> Dict[str, Any]:
        with self._lock:
            stats = self._memory.stats()
        stats.update(
            disk_hits=self.disk_hits,
            disk_writes=self.disk_writes,
            artifact_dir=self.artifact_dir,
        )
        return stats
