"""repro.obs — zero-dependency telemetry for the BS-SA/DALTA pipeline.

Off by default.  The instrumented hot paths call :func:`span`,
:func:`incr`, and :func:`event`; while telemetry is disabled those are
a single ``None`` check (``span`` returns a shared no-op object), so
disabled overhead stays well under 2%.

Enable with sinks for the current process::

    from repro import obs
    from repro.obs import JsonlSink, MemorySink, StderrSink

    with obs.session(JsonlSink("trace.jsonl"), StderrSink(verbose=True)):
        run_bssa(target, config)

or via the CLI: ``python -m repro experiment table2 --trace out.jsonl
--verbose``.  ``repro.obs.summarize.summarize("out.jsonl")`` turns the
trace into a per-phase breakdown; :mod:`repro.obs.manifest` records
config hashes, seeds, and git revisions alongside the outputs.

See ``docs/observability.md`` for the span taxonomy and sink guide.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Optional

from .core import NOOP_SPAN, Histogram, Span, Telemetry
from .manifest import RunManifest, config_hash, git_revision
from .sinks import JsonlSink, MemorySink, NullSink, Sink, StderrSink
from . import exposition, manifest, summarize  # noqa: F401  (re-exported)

__all__ = [
    "Telemetry",
    "Span",
    "Histogram",
    "Sink",
    "MemorySink",
    "JsonlSink",
    "NullSink",
    "StderrSink",
    "RunManifest",
    "config_hash",
    "git_revision",
    "enabled",
    "current",
    "enable",
    "disable",
    "session",
    "span",
    "incr",
    "gauge",
    "observe",
    "event",
    "exposition",
    "manifest",
    "summarize",
]

#: the active session, or None — the module-level enabled flag
_current: Optional[Telemetry] = None


def enabled() -> bool:
    """True when a telemetry session is active in this process."""
    return _current is not None


def current() -> Optional[Telemetry]:
    """The active :class:`Telemetry`, or ``None`` when disabled."""
    return _current


def enable(*sinks: Sink) -> Telemetry:
    """Start a telemetry session, replacing any active one."""
    global _current
    if _current is not None:
        _current.close()
    _current = Telemetry(sinks)
    return _current


def disable() -> None:
    """End the active session, flushing and closing its sinks."""
    global _current
    if _current is not None:
        _current.close()
        _current = None


@contextmanager
def session(*sinks: Sink):
    """Scoped telemetry session; restores the previous one on exit."""
    global _current
    previous = _current
    telemetry = Telemetry(sinks)
    _current = telemetry
    try:
        yield telemetry
    finally:
        _current = previous
        telemetry.close()


# ----------------------------------------------------------------------
# Hot-path API: each function is one global load + None check when
# telemetry is disabled.
# ----------------------------------------------------------------------


def span(name: str, **attributes):
    """A timed span context manager (no-op singleton when disabled)."""
    telemetry = _current
    if telemetry is None:
        return NOOP_SPAN
    return telemetry.span(name, **attributes)


def incr(name: str, value: float = 1) -> None:
    """Increment a counter (no-op when disabled)."""
    telemetry = _current
    if telemetry is not None:
        telemetry.incr(name, value)


def gauge(name: str, value: float) -> None:
    """Set a gauge to its latest value (no-op when disabled)."""
    telemetry = _current
    if telemetry is not None:
        telemetry.gauge(name, value)


def observe(name: str, value: float) -> None:
    """Record an observation into a histogram (no-op when disabled)."""
    telemetry = _current
    if telemetry is not None:
        telemetry.observe(name, value)


def event(name: str, **attributes) -> None:
    """Emit a point-in-time event (no-op when disabled)."""
    telemetry = _current
    if telemetry is not None:
        telemetry.event(name, **attributes)
