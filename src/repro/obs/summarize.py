"""Turn a JSONL trace into a per-phase breakdown.

``summarize(path_or_records)`` aggregates span records by name into
count / total / mean / min / max wall-clock statistics, plus the trace's
total wall-clock (the sum of root-span durations) and the merged
counters.  ``TraceSummary.render()`` prints the breakdown as a
monospace table.

Also usable as a script::

    PYTHONPATH=src python -m repro.obs.summarize trace.jsonl
"""

from __future__ import annotations

import json
import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Union

from .core import Histogram

__all__ = [
    "PhaseStats",
    "TraceSummary",
    "load_trace",
    "load_trace_tolerant",
    "summarize",
]


@dataclass
class PhaseStats:
    """Aggregated wall-clock statistics for one span name."""

    name: str
    count: int = 0
    total: float = 0.0
    min: float = math.inf
    max: float = 0.0

    def add(self, duration: float) -> None:
        self.count += 1
        self.total += duration
        self.min = min(self.min, duration)
        self.max = max(self.max, duration)

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0


@dataclass
class TraceSummary:
    """Per-phase rollup of one trace file."""

    phases: Dict[str, PhaseStats] = field(default_factory=dict)
    #: sum of root-span (depth 0) durations — the traced wall-clock
    total_seconds: float = 0.0
    counters: Dict[str, float] = field(default_factory=dict)
    events: Dict[str, int] = field(default_factory=dict)
    manifests: List[Dict[str, Any]] = field(default_factory=list)
    #: merged value-distribution histograms (``obs.observe``)
    histograms: Dict[str, Histogram] = field(default_factory=dict)

    def phase_timings(self) -> Dict[str, Dict[str, float]]:
        """The rollup in manifest form (span name -> count/total)."""
        return {
            name: {"count": stats.count, "total": stats.total}
            for name, stats in self.phases.items()
        }

    def cache_rates(self) -> Dict[str, Dict[str, float]]:
        """Hit rates derived from paired ``*_hit``/``*_miss`` counters.

        The caching layer emits ``cache.<name>.hit``/``.miss`` per
        cache plus the ``opt.cache_hit``/``opt.cache_miss`` aggregate
        for the OptForPart result memo (see ``docs/performance.md``).
        """
        rates: Dict[str, Dict[str, float]] = {}
        for name, value in self.counters.items():
            if name.endswith("_hit"):
                stem, sep = name[: -len("_hit")], "_"
            elif name.endswith(".hit"):
                stem, sep = name[: -len(".hit")], "."
            else:
                continue
            misses = float(self.counters.get(f"{stem}{sep}miss", 0))
            hits = float(value)
            total = hits + misses
            if total <= 0:
                continue
            evictions = float(self.counters.get(f"{stem}{sep}eviction", 0))
            if not evictions and stem == "opt.cache":
                # the OptForPart result memo names its eviction counter
                # explicitly (see repro.core.opt_for_part)
                evictions = float(self.counters.get("opt.memo_evictions", 0))
            rates[stem] = {
                "hits": hits,
                "misses": misses,
                "hit_rate": hits / total,
                "evictions": evictions,
            }
        return rates

    def pool_stats(self) -> Dict[str, float]:
        """The warm-pool backend counters (``pool.*``).

        Workers started/restarted, shared-memory bytes and table
        segments, and the shared-memo traffic
        (``pool.memo_published`` / ``imported`` / ``dropped`` plus the
        disk-snapshot entry counts) — empty when the trace never used
        the pool backend.
        """
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith("pool.")
        }

    def engine_stats(self) -> Dict[str, float]:
        """The checkpointed-engine and fault-injection counters.

        ``engine.jobs`` / ``engine.resumed`` / ``engine.retries`` /
        ``engine.timeouts`` / ``engine.quarantined`` plus
        ``faults.injected`` — empty when the trace never ran the
        engine.
        """
        return {
            name: value
            for name, value in self.counters.items()
            if name.startswith("engine.") or name.startswith("faults.")
        }

    def render(self) -> str:
        # Imported lazily: reporting lives in the experiments package,
        # which transitively imports the instrumented core modules.
        from ..experiments import reporting

        if not (self.phases or self.counters or self.events or self.manifests):
            return "trace is empty: no spans, counters, or events recorded"

        ordered = sorted(
            self.phases.values(), key=lambda s: s.total, reverse=True
        )
        rows = [
            [s.name, s.count, s.total, s.mean, s.min, s.max] for s in ordered
        ]
        table = reporting.format_table(
            ["phase", "count", "total(s)", "mean(s)", "min(s)", "max(s)"],
            rows,
            title="Trace summary — per-phase wall clock",
        )
        lines = [table, f"total traced wall-clock: {self.total_seconds:.3f}s"]
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name}: {self.counters[name]:g}")
        engine = self.engine_stats()
        if engine:
            lines.append("engine:")
            for name in sorted(engine):
                lines.append(f"  {name}: {engine[name]:g}")
        pool = self.pool_stats()
        if pool:
            lines.append("pool:")
            for name in sorted(pool):
                lines.append(f"  {name}: {pool[name]:g}")
        rates = self.cache_rates()
        if rates:
            lines.append("cache hit rates:")
            for stem in sorted(rates):
                info = rates[stem]
                line = (
                    f"  {stem}: {info['hit_rate']:.1%} "
                    f"({info['hits']:g} hits / {info['misses']:g} misses"
                )
                if info.get("evictions"):
                    line += f" / {info['evictions']:g} evictions"
                lines.append(line + ")")

        if self.histograms:
            lines.append("distributions:")
            for name in sorted(self.histograms):
                hist = self.histograms[name]
                if not hist.count:
                    continue
                lines.append(
                    f"  {name}: n={hist.count} mean={hist.mean:.4g} "
                    f"p50={hist.quantile(0.5):.4g} "
                    f"p90={hist.quantile(0.9):.4g} "
                    f"p99={hist.quantile(0.99):.4g} "
                    f"[{hist.min:.4g}, {hist.max:.4g}]"
                )
        if self.events:
            lines.append(
                "events: "
                + ", ".join(f"{k}×{v}" for k, v in sorted(self.events.items()))
            )
        return "\n".join(lines)


def load_trace(path: str) -> List[Dict[str, Any]]:
    """Read every record from a JSONL trace file (strict)."""
    records = []
    with open(path) as handle:
        for line in handle:
            line = line.strip()
            if line:
                records.append(json.loads(line))
    return records


def load_trace_tolerant(path: str):
    """Read a JSONL trace, stopping gracefully at the first bad line.

    A trace written by a process that crashed or was killed mid-write
    can end in a truncated line; this reads every parseable record and
    reports where parsing stopped.  Returns ``(records, bad_lineno)``
    where ``bad_lineno`` is the 1-based line number of the first
    unparseable line (``None`` for a clean file).
    """
    records: List[Dict[str, Any]] = []
    with open(path) as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError:
                return records, lineno
    return records, None


def summarize(source: Union[str, Iterable[Dict[str, Any]]]) -> TraceSummary:
    """Aggregate a trace (file path or record iterable) per span name."""
    records = load_trace(source) if isinstance(source, str) else source
    summary = TraceSummary()
    for record in records:
        kind = record.get("type")
        if kind == "span":
            duration = float(record.get("dur") or 0.0)
            name = record.get("name", "?")
            stats = summary.phases.get(name)
            if stats is None:
                stats = summary.phases[name] = PhaseStats(name)
            stats.add(duration)
            if record.get("depth", 0) == 0:
                summary.total_seconds += duration
        elif kind == "counters":
            for name, value in record.get("values", {}).items():
                summary.counters[name] = summary.counters.get(name, 0) + value
            for name, payload in record.get("histograms", {}).items():
                hist = summary.histograms.get(name)
                if hist is None:
                    hist = summary.histograms[name] = Histogram()
                hist.merge(payload)
        elif kind == "event":
            name = record.get("name", "?")
            summary.events[name] = summary.events.get(name, 0) + 1
        elif kind == "manifest":
            summary.manifests.append(record)
    return summary


def main(argv=None) -> int:
    import argparse

    parser = argparse.ArgumentParser(description="Summarise a repro trace file")
    parser.add_argument("trace", help="JSONL trace written by --trace")
    args = parser.parse_args(argv)
    print(summarize(args.trace).render())
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
