"""Telemetry primitives: spans, counters, and the session object.

The module keeps one process-wide :class:`Telemetry` instance (or
``None`` when telemetry is off).  Everything here is stdlib-only and
written so the *disabled* path costs a single attribute load and
``None`` check — instrumented hot loops pay well under the 2% budget
documented in ``docs/observability.md``.

Records are plain dicts with a ``type`` discriminator:

``span``
    Emitted when a span closes: name, nesting depth, span/parent ids,
    wall-clock start (``ts``), duration in seconds (``dur``), and the
    structured attributes passed to :meth:`Telemetry.span`.
``event``
    A point-in-time occurrence (e.g. ``run.completed``).
``counters``
    A snapshot of the accumulated counters/gauges, emitted on flush.
``manifest``
    A run manifest (see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Optional

__all__ = ["Span", "NOOP_SPAN", "Telemetry"]


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass


#: the singleton handed out by ``obs.span`` when telemetry is off
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of the program.

    Use as a context manager; the record is emitted to the sinks when
    the span closes.  Nesting is tracked by the owning
    :class:`Telemetry` via a span stack, so ``depth`` and ``parent``
    come for free.
    """

    __slots__ = (
        "telemetry",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "depth",
        "ts",
        "_start",
        "duration",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attributes: Dict[str, Any]):
        self.telemetry = telemetry
        self.name = name
        self.attributes = attributes
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.ts = 0.0
        self._start = 0.0
        self.duration: Optional[float] = None

    def set(self, **attributes) -> None:
        """Attach extra attributes mid-span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self.telemetry._open(self)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.duration = time.perf_counter() - self._start
        self.telemetry._close(self, error=exc_type is not None)
        return False


class Telemetry:
    """A telemetry session: a span stack, counters, and output sinks."""

    def __init__(self, sinks=()) -> None:
        self.sinks = list(sinks)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self._stack: List[Span] = []
        self._next_id = 1

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attributes) -> Span:
        return Span(self, name, attributes)

    def _open(self, span: Span) -> None:
        span.span_id = self._next_id
        self._next_id += 1
        span.parent_id = self._stack[-1].span_id if self._stack else None
        span.depth = len(self._stack)
        self._stack.append(span)

    def _close(self, span: Span, error: bool = False) -> None:
        # Tolerate mispaired exits instead of corrupting the stack.
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:
            while self._stack and self._stack.pop() is not span:
                pass
        record = {
            "type": "span",
            "name": span.name,
            "id": span.span_id,
            "parent": span.parent_id,
            "depth": span.depth,
            "ts": span.ts,
            "dur": span.duration,
        }
        if span.attributes:
            record["attrs"] = span.attributes
        if error:
            record["error"] = True
        self.emit(record)

    # -- counters / gauges --------------------------------------------
    def incr(self, name: str, value: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        self.gauges[name] = value

    def merge_counters(self, counters: Dict[str, float]) -> None:
        """Fold counters from another session (e.g. a worker process)."""
        for name, value in counters.items():
            self.counters[name] = self.counters.get(name, 0) + value

    # -- events / records ---------------------------------------------
    def event(self, name: str, **attributes) -> None:
        record: Dict[str, Any] = {"type": "event", "name": name, "ts": time.time()}
        if attributes:
            record["attrs"] = attributes
        self.emit(record)

    def emit(self, record: Dict[str, Any]) -> None:
        for sink in self.sinks:
            sink.record(record)

    def absorb(self, records, **extra_attrs) -> None:
        """Replay records captured in another process into this session.

        Counter snapshots are folded into this session's counters;
        span/event records are re-emitted verbatim (plus
        ``extra_attrs``, e.g. a worker index) so one trace file holds
        the whole multi-process run.
        """
        for record in records:
            if record.get("type") == "counters":
                self.merge_counters(record.get("values", {}))
                continue
            if extra_attrs:
                record = dict(record)
                attrs = dict(record.get("attrs", {}))
                attrs.update(extra_attrs)
                record["attrs"] = attrs
            self.emit(record)

    # -- lifecycle -----------------------------------------------------
    def counters_record(self) -> Dict[str, Any]:
        record: Dict[str, Any] = {"type": "counters", "values": dict(self.counters)}
        if self.gauges:
            record["gauges"] = dict(self.gauges)
        return record

    def flush(self) -> None:
        """Emit the counter snapshot and flush every sink."""
        if self.counters or self.gauges:
            self.emit(self.counters_record())
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        self.flush()
        for sink in self.sinks:
            sink.close()
