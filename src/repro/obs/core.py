"""Telemetry primitives: spans, counters, and the session object.

The module keeps one process-wide :class:`Telemetry` instance (or
``None`` when telemetry is off).  Everything here is stdlib-only and
written so the *disabled* path costs a single attribute load and
``None`` check — instrumented hot loops pay well under the 2% budget
documented in ``docs/observability.md``.

Records are plain dicts with a ``type`` discriminator:

``span``
    Emitted when a span closes: name, nesting depth, span/parent ids,
    wall-clock start (``ts``), duration in seconds (``dur``), and the
    structured attributes passed to :meth:`Telemetry.span`.
``event``
    A point-in-time occurrence (e.g. ``run.completed``).
``counters``
    A snapshot of the accumulated counters/gauges/histograms, emitted
    on flush.
``manifest``
    A run manifest (see :mod:`repro.obs.manifest`).
"""

from __future__ import annotations

import math
import threading
import time
from typing import Any, Dict, List, Optional, Union

__all__ = ["Span", "NOOP_SPAN", "Histogram", "Telemetry"]


class Histogram:
    """Fixed log-bucket histogram: mergeable, with bounded-error quantiles.

    Observations land in geometrically spaced magnitude buckets (growth
    factor :data:`BASE` per bucket) mirrored around a zero bucket, so
    signed values are covered: bucket ``+i`` holds positive values with
    magnitude in ``(REF * BASE**(i-1), REF * BASE**i]``, bucket ``-i``
    the same magnitudes negated, and bucket ``0`` everything with
    magnitude at most :data:`REF`.  The layout is *fixed* — no
    rescaling — so merging two histograms is plain integer bucket-count
    addition: associative and commutative by construction, which is
    what lets worker deltas stream into a live campaign view in any
    arrival order.

    :meth:`quantile` is nearest-rank over the buckets: it returns the
    value-side bound of the bucket holding the ranked sample, clamped
    to the observed ``[min, max]``, and is therefore within one bucket
    (a relative factor of ``BASE``, ~19%) of the true empirical
    quantile.
    """

    #: geometric growth per bucket (~19% relative resolution)
    BASE = 2 ** 0.25
    #: magnitude of the zero bucket's edge; ``|v| <= REF`` lands in bucket 0
    REF = 1e-9
    #: largest bucket index; covers magnitudes up to ``REF * BASE**MAX_INDEX``
    MAX_INDEX = 320

    __slots__ = ("buckets", "count", "total", "min", "max")

    _LOG_BASE = math.log(BASE)

    def __init__(self) -> None:
        #: signed bucket index -> observation count (sparse)
        self.buckets: Dict[int, int] = {}
        self.count = 0
        self.total = 0.0
        self.min = math.inf
        self.max = -math.inf

    @classmethod
    def _index(cls, value: float) -> int:
        """Signed bucket index for ``value`` (0 for tiny magnitudes)."""
        magnitude = abs(value)
        if magnitude <= cls.REF:
            return 0
        idx = math.ceil(math.log(magnitude / cls.REF) / cls._LOG_BASE)
        idx = min(max(idx, 1), cls.MAX_INDEX)
        return idx if value > 0 else -idx

    @classmethod
    def bucket_upper_bound(cls, index: int) -> float:
        """Largest value that maps into bucket ``index``.

        For negative buckets this is the bound *closest to zero* (the
        smallest magnitude in the bucket), keeping the within-one-bucket
        quantile guarantee symmetric around zero.
        """
        if index == 0:
            return cls.REF
        if index > 0:
            return cls.REF * cls.BASE ** index
        return -(cls.REF * cls.BASE ** (-index - 1))

    def observe(self, value: float) -> None:
        value = float(value)
        if math.isnan(value):
            return
        idx = self._index(value)
        self.buckets[idx] = self.buckets.get(idx, 0) + 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def merge(self, other: Union["Histogram", Dict[str, Any]]) -> None:
        """Fold another histogram (or its ``to_dict`` payload) into this one."""
        if not isinstance(other, Histogram):
            other = Histogram.from_dict(other)
        for idx, n in other.buckets.items():
            self.buckets[idx] = self.buckets.get(idx, 0) + n
        self.count += other.count
        self.total += other.total
        if other.min < self.min:
            self.min = other.min
        if other.max > self.max:
            self.max = other.max

    def quantile(self, q: float) -> float:
        """Nearest-rank quantile estimate (NaN when empty)."""
        if self.count == 0:
            return math.nan
        q = min(max(float(q), 0.0), 1.0)
        rank = max(1, math.ceil(q * self.count))
        cumulative = 0
        for idx in sorted(self.buckets):
            cumulative += self.buckets[idx]
            if cumulative >= rank:
                bound = self.bucket_upper_bound(idx) if idx != 0 else 0.0
                return min(max(bound, self.min), self.max)
        return self.max  # pragma: no cover - cumulative always reaches count

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else math.nan

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe payload (bucket keys become strings)."""
        return {
            "buckets": {str(idx): n for idx, n in self.buckets.items()},
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "Histogram":
        hist = cls()
        hist.buckets = {
            int(idx): int(n) for idx, n in payload.get("buckets", {}).items()
        }
        hist.count = int(payload.get("count", 0))
        hist.total = float(payload.get("total", 0.0))
        low, high = payload.get("min"), payload.get("max")
        hist.min = math.inf if low is None else float(low)
        hist.max = -math.inf if high is None else float(high)
        return hist

    def __len__(self) -> int:
        return self.count

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if not self.count:
            return "Histogram(empty)"
        return (
            f"Histogram(count={self.count}, min={self.min:.4g}, "
            f"p50={self.quantile(0.5):.4g}, max={self.max:.4g})"
        )


class _NoopSpan:
    """Shared do-nothing span returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info) -> bool:
        return False

    def set(self, **attributes) -> None:
        pass


#: the singleton handed out by ``obs.span`` when telemetry is off
NOOP_SPAN = _NoopSpan()


class Span:
    """One timed, attributed region of the program.

    Use as a context manager; the record is emitted to the sinks when
    the span closes.  Nesting is tracked by the owning
    :class:`Telemetry` via a span stack, so ``depth`` and ``parent``
    come for free.
    """

    __slots__ = (
        "telemetry",
        "name",
        "attributes",
        "span_id",
        "parent_id",
        "depth",
        "ts",
        "_start",
        "duration",
    )

    def __init__(self, telemetry: "Telemetry", name: str, attributes: Dict[str, Any]):
        self.telemetry = telemetry
        self.name = name
        self.attributes = attributes
        self.span_id: Optional[int] = None
        self.parent_id: Optional[int] = None
        self.depth = 0
        self.ts = 0.0
        self._start = 0.0
        self.duration: Optional[float] = None

    def set(self, **attributes) -> None:
        """Attach extra attributes mid-span."""
        self.attributes.update(attributes)

    def __enter__(self) -> "Span":
        self.telemetry._open(self)
        self.ts = time.time()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc_value, traceback) -> bool:
        self.duration = time.perf_counter() - self._start
        self.telemetry._close(self, error=exc_type is not None)
        return False


class Telemetry:
    """A telemetry session: a span stack, counters, and output sinks.

    The session is process-global, and kernel-fusion party threads
    (``repro.core.fusion``) mutate it concurrently — a re-entrant lock
    guards every mutation (span bookkeeping, counters, histograms,
    sink emission) so increments are never lost and sink lines never
    interleave.  The uncontended acquire is ~0.1µs, far inside the
    documented overhead budget.
    """

    def __init__(self, sinks=()) -> None:
        self.sinks = list(sinks)
        self.counters: Dict[str, float] = {}
        self.gauges: Dict[str, float] = {}
        self.histograms: Dict[str, Histogram] = {}
        self._stack: List[Span] = []
        self._next_id = 1
        self._lock = threading.RLock()

    # -- spans ---------------------------------------------------------
    def span(self, name: str, **attributes) -> Span:
        return Span(self, name, attributes)

    def _open(self, span: Span) -> None:
        with self._lock:
            span.span_id = self._next_id
            self._next_id += 1
            span.parent_id = self._stack[-1].span_id if self._stack else None
            span.depth = len(self._stack)
            self._stack.append(span)

    def _close(self, span: Span, error: bool = False) -> None:
        with self._lock:
            # Tolerate mispaired exits instead of corrupting the stack.
            if self._stack and self._stack[-1] is span:
                self._stack.pop()
            elif span in self._stack:
                while self._stack and self._stack.pop() is not span:
                    pass
            record = {
                "type": "span",
                "name": span.name,
                "id": span.span_id,
                "parent": span.parent_id,
                "depth": span.depth,
                "ts": span.ts,
                "dur": span.duration,
            }
            if span.attributes:
                record["attrs"] = span.attributes
            if error:
                record["error"] = True
            self.emit(record)

    # -- counters / gauges --------------------------------------------
    def incr(self, name: str, value: float = 1) -> None:
        with self._lock:
            self.counters[name] = self.counters.get(name, 0) + value

    def gauge(self, name: str, value: float) -> None:
        with self._lock:
            self.gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Record one observation into the named histogram."""
        with self._lock:
            hist = self.histograms.get(name)
            if hist is None:
                hist = self.histograms[name] = Histogram()
            hist.observe(value)

    def merge_counters(self, counters: Dict[str, float]) -> None:
        """Fold counters from another session (e.g. a worker process)."""
        with self._lock:
            for name, value in counters.items():
                self.counters[name] = self.counters.get(name, 0) + value

    def merge_gauges(
        self, gauges: Dict[str, float], worker: Optional[Any] = None
    ) -> None:
        """Fold gauges from another session, last writer wins.

        Unlike counters, gauges are point-in-time values that cannot be
        summed; when ``worker`` is given each gauge is stored under a
        worker-labelled key (``name#worker=N``) so concurrent workers
        never clobber each other's readings.  Exposition parses the
        suffix back into a Prometheus label.
        """
        with self._lock:
            for name, value in gauges.items():
                if worker is None or "#" in name:  # already labelled upstream
                    key = name
                else:
                    key = f"{name}#worker={worker}"
                self.gauges[key] = value

    def merge_histograms(self, histograms: Dict[str, Any]) -> None:
        """Fold histogram payloads (``Histogram`` or dict) from elsewhere."""
        with self._lock:
            for name, payload in histograms.items():
                hist = self.histograms.get(name)
                if hist is None:
                    hist = self.histograms[name] = Histogram()
                hist.merge(payload)

    # -- events / records ---------------------------------------------
    def event(self, name: str, **attributes) -> None:
        record: Dict[str, Any] = {"type": "event", "name": name, "ts": time.time()}
        if attributes:
            record["attrs"] = attributes
        self.emit(record)

    def emit(self, record: Dict[str, Any]) -> None:
        with self._lock:
            for sink in self.sinks:
                sink.record(record)

    def absorb(self, records, **extra_attrs) -> None:
        """Replay records captured in another process into this session.

        Counter snapshots are folded into this session's counters;
        span/event records are re-emitted verbatim (plus
        ``extra_attrs``, e.g. a worker index) so one trace file holds
        the whole multi-process run.
        """
        for record in records:
            if record.get("type") == "counters":
                self.merge_counters(record.get("values", {}))
                gauges = record.get("gauges")
                if gauges:
                    self.merge_gauges(gauges, worker=extra_attrs.get("worker"))
                histograms = record.get("histograms")
                if histograms:
                    self.merge_histograms(histograms)
                continue
            if extra_attrs:
                record = dict(record)
                attrs = dict(record.get("attrs", {}))
                attrs.update(extra_attrs)
                record["attrs"] = attrs
            self.emit(record)

    # -- lifecycle -----------------------------------------------------
    def counters_record(self) -> Dict[str, Any]:
        with self._lock:
            record: Dict[str, Any] = {
                "type": "counters", "values": dict(self.counters)
            }
            if self.gauges:
                record["gauges"] = dict(self.gauges)
            if self.histograms:
                record["histograms"] = {
                    name: hist.to_dict() for name, hist in self.histograms.items()
                }
            return record

    def flush(self) -> None:
        """Emit the counter snapshot and flush every sink."""
        if self.counters or self.gauges or self.histograms:
            self.emit(self.counters_record())
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        self.flush()
        for sink in self.sinks:
            sink.close()
