"""Live metrics exposition: Prometheus text + healthz over stdlib HTTP.

A :class:`MetricsHub` is the thread-safe live view of a running
campaign: the parent session's counters/gauges/histograms, plus
*in-flight* per-job snapshots streamed by pool workers mid-job, plus
campaign bookkeeping (jobs done/running/retried/quarantined) and
worker liveness.  :class:`MetricsServer` serves that view over plain
``http.server``:

``/metrics``
    Prometheus text exposition (version 0.0.4).
``/healthz``
    Small JSON health document: campaign state, worker liveness,
    quarantine count.
``/state``
    The full hub snapshot as JSON — consumed by ``repro top``.

Everything here is stdlib-only and strictly read-only with respect to
the computation: scraping the endpoint can never change an
algorithm's outcome.

The in-flight scheme avoids double counting: workers stream
*cumulative* snapshots of their current job's session, keyed by
``(worker, job index, attempt)``; the parent drops a worker's
in-flight snapshot the moment the job's authoritative end-of-job
records are absorbed.  The live view is therefore always
``session totals + sum(in-flight snapshots)`` — merge-consistent at
every instant, and exactly equal to the post-hoc aggregation once the
campaign drains.
"""

from __future__ import annotations

import json
import re
import threading
import time
from contextlib import contextmanager
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Dict, Iterator, List, Optional, Tuple

from .core import Histogram, Telemetry

__all__ = [
    "HardenedHTTPServer",
    "MetricsHub",
    "MetricsServer",
    "active_hub",
    "activated",
    "render_prometheus",
    "render_top",
    "sanitize_metric_name",
    "sparkline",
]

#: seconds without a heartbeat before a worker is reported stale
WORKER_STALE_SECONDS = 10.0

#: per-connection socket timeout — a client that stops sending (or
#: reading) mid-request is disconnected instead of wedging its handler
#: thread forever
REQUEST_TIMEOUT = 30.0

_INVALID_CHARS = re.compile(r"[^a-zA-Z0-9_]")

#: the hub the current campaign publishes to, or None
_active: Optional[MetricsHub] = None


def active_hub() -> Optional["MetricsHub"]:
    """The hub the running campaign publishes to, or ``None``."""
    return _active


@contextmanager
def activated(hub: "MetricsHub") -> Iterator["MetricsHub"]:
    """Make ``hub`` the process-wide publish target for the duration."""
    global _active
    previous = _active
    _active = hub
    try:
        yield hub
    finally:
        _active = previous


def _copy_dict(source: Dict[str, Any]) -> Dict[str, Any]:
    """Best-effort snapshot of a dict another thread may be mutating."""
    for _ in range(5):
        try:
            return dict(source)
        except RuntimeError:  # resized mid-copy; retry
            continue
    return {}


class MetricsHub:
    """Thread-safe aggregation point for one campaign's live metrics."""

    def __init__(self, telemetry: Optional[Telemetry] = None) -> None:
        self._lock = threading.Lock()
        self._telemetry = telemetry
        self.started = time.time()
        self.campaign: Dict[str, Any] = {
            "state": "starting",
            "total": 0,
            "done": 0,
            "running": 0,
            "retried": 0,
            "timeouts": 0,
            "quarantined": 0,
            "resumed": 0,
        }
        #: worker id -> {"last_seen": ts, "job": [index, attempt] | None}
        self._workers: Dict[Any, Dict[str, Any]] = {}
        #: worker id -> latest cumulative snapshot of its in-flight job
        self._inflight: Dict[Any, Dict[str, Any]] = {}
        #: total streamed reports accepted (tests/diagnostics)
        self.stream_reports = 0

    # -- publishing (campaign / supervisor side) ----------------------
    def campaign_update(self, **fields: Any) -> None:
        with self._lock:
            self.campaign.update(fields)

    def worker_seen(self, worker_id: Any, job: Optional[List[int]] = None) -> None:
        with self._lock:
            entry = self._workers.setdefault(worker_id, {"job": None})
            entry["last_seen"] = time.time()
            if job is not None:
                entry["job"] = list(job)

    def worker_report(
        self,
        worker_id: Any,
        job: List[int],
        counters: Optional[Dict[str, float]] = None,
        gauges: Optional[Dict[str, float]] = None,
        histograms: Optional[Dict[str, Dict[str, Any]]] = None,
    ) -> None:
        """Accept a cumulative mid-job snapshot streamed by a worker."""
        with self._lock:
            entry = self._workers.setdefault(worker_id, {})
            entry["last_seen"] = time.time()
            entry["job"] = list(job)
            self._inflight[worker_id] = {
                "job": list(job),
                "counters": counters or {},
                "gauges": gauges or {},
                "histograms": histograms or {},
            }
            self.stream_reports += 1

    def worker_clear(self, worker_id: Any) -> None:
        """Job finished: its telemetry is now in the session, drop the
        in-flight snapshot so nothing is counted twice."""
        with self._lock:
            self._inflight.pop(worker_id, None)
            entry = self._workers.setdefault(worker_id, {})
            entry["last_seen"] = time.time()
            entry["job"] = None

    def worker_gone(self, worker_id: Any) -> None:
        with self._lock:
            self._inflight.pop(worker_id, None)
            self._workers.pop(worker_id, None)

    # -- reading (HTTP handler side) ----------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """Merge-consistent view: session totals + in-flight deltas."""
        telemetry = self._telemetry
        counters: Dict[str, float] = {}
        gauges: Dict[str, float] = {}
        histograms: Dict[str, Histogram] = {}
        if telemetry is not None:
            counters = _copy_dict(telemetry.counters)
            gauges = _copy_dict(telemetry.gauges)
            for name, hist in _copy_dict(telemetry.histograms).items():
                clone = Histogram()
                clone.merge(hist)
                histograms[name] = clone
        with self._lock:
            inflight = {
                worker_id: snap for worker_id, snap in self._inflight.items()
            }
            campaign = dict(self.campaign)
            now = time.time()
            workers = {
                str(worker_id): {
                    "job": entry.get("job"),
                    "age": round(now - entry.get("last_seen", now), 3),
                }
                for worker_id, entry in self._workers.items()
            }
        for worker_id, snap in inflight.items():
            for name, value in snap["counters"].items():
                counters[name] = counters.get(name, 0) + value
            for name, value in snap["gauges"].items():
                gauges[f"{name}#worker={worker_id}"] = value
            for name, payload in snap["histograms"].items():
                hist = histograms.get(name)
                if hist is None:
                    hist = histograms[name] = Histogram()
                try:
                    hist.merge(payload)
                except (TypeError, ValueError):  # torn snapshot; skip
                    continue
        return {
            "time": time.time(),
            "uptime": round(time.time() - self.started, 3),
            "campaign": campaign,
            "workers": workers,
            "counters": counters,
            "gauges": gauges,
            "histograms": {
                name: hist.to_dict() for name, hist in histograms.items()
            },
        }

    def healthz(self) -> Dict[str, Any]:
        """Light health document for ``/healthz``."""
        snap = self.snapshot()
        campaign = snap["campaign"]
        stale = [
            worker_id
            for worker_id, entry in snap["workers"].items()
            if entry["age"] > WORKER_STALE_SECONDS and entry["job"] is not None
        ]
        degraded = campaign.get("quarantined", 0) > 0 or bool(stale)
        return {
            "status": "degraded" if degraded else "ok",
            "campaign": campaign,
            "uptime": snap["uptime"],
            "workers": {
                "known": len(snap["workers"]),
                "busy": sum(
                    1 for e in snap["workers"].values() if e["job"] is not None
                ),
                "stale": stale,
            },
            "quarantine_count": campaign.get("quarantined", 0),
        }


# ----------------------------------------------------------------------
# Prometheus text rendering
# ----------------------------------------------------------------------


def sanitize_metric_name(name: str) -> str:
    """Dotted internal name -> valid, ``repro_``-prefixed metric name."""
    return "repro_" + _INVALID_CHARS.sub("_", str(name))


def _format_value(value: Any) -> str:
    number = float(value)
    if number == int(number) and abs(number) < 1e15:
        return str(int(number))
    return repr(number)


def _split_gauge_key(key: str) -> Tuple[str, str]:
    """``name#worker=N`` -> (name, '{worker="N"}'); plain names pass through."""
    base, _, label = key.partition("#")
    if not label or "=" not in label:
        return base, ""
    label_name, _, label_value = label.partition("=")
    label_name = _INVALID_CHARS.sub("_", label_name)
    label_value = str(label_value).replace("\\", r"\\").replace('"', r'\"')
    return base, '{%s="%s"}' % (label_name, label_value)


def render_prometheus(snapshot: Dict[str, Any]) -> str:
    """Render a hub snapshot as Prometheus text exposition format."""
    lines: List[str] = []

    campaign = snapshot.get("campaign", {})
    jobs = [
        'repro_campaign_jobs{state="%s"} %s'
        % (field, _format_value(campaign[field]))
        for field in (
            "total", "done", "running", "retried", "quarantined", "resumed"
        )
        if field in campaign
    ]
    if jobs:
        lines.append("# TYPE repro_campaign_jobs gauge")
        lines.extend(jobs)
    state = campaign.get("state")
    if state is not None:
        lines.append("# TYPE repro_campaign_running gauge")
        lines.append(
            "repro_campaign_running %d" % (1 if state == "running" else 0)
        )

    workers = snapshot.get("workers", {})
    if workers:
        lines.append("# TYPE repro_worker_busy gauge")
        for worker_id in sorted(workers):
            busy = 1 if workers[worker_id].get("job") is not None else 0
            lines.append(
                'repro_worker_busy{worker="%s"} %d' % (worker_id, busy)
            )

    for name in sorted(snapshot.get("counters", {})):
        metric = sanitize_metric_name(name) + "_total"
        lines.append("# TYPE %s counter" % metric)
        lines.append(
            "%s %s" % (metric, _format_value(snapshot["counters"][name]))
        )

    gauges = snapshot.get("gauges", {})
    by_metric: Dict[str, List[Tuple[str, Any]]] = {}
    for key in sorted(gauges):
        base, labels = _split_gauge_key(key)
        by_metric.setdefault(sanitize_metric_name(base), []).append(
            (labels, gauges[key])
        )
    for metric in sorted(by_metric):
        lines.append("# TYPE %s gauge" % metric)
        for labels, value in by_metric[metric]:
            lines.append("%s%s %s" % (metric, labels, _format_value(value)))

    for name in sorted(snapshot.get("histograms", {})):
        payload = snapshot["histograms"][name]
        metric = sanitize_metric_name(name)
        lines.append("# TYPE %s histogram" % metric)
        buckets = {
            int(idx): int(count)
            for idx, count in payload.get("buckets", {}).items()
        }
        cumulative = 0
        for idx in sorted(buckets):
            cumulative += buckets[idx]
            le = Histogram.bucket_upper_bound(idx)
            lines.append(
                '%s_bucket{le="%s"} %d' % (metric, repr(le), cumulative)
            )
        lines.append('%s_bucket{le="+Inf"} %d' % (metric, payload.get("count", 0)))
        lines.append("%s_sum %s" % (metric, _format_value(payload.get("total", 0.0))))
        lines.append("%s_count %d" % (metric, payload.get("count", 0)))

    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Terminal rendering (``repro top``)
# ----------------------------------------------------------------------

_BLOCKS = "▁▂▃▄▅▆▇█"


def sparkline(payload: Dict[str, Any], width: int = 24) -> str:
    """Histogram payload -> a fixed-width unicode sparkline."""
    buckets = {
        int(idx): int(count) for idx, count in payload.get("buckets", {}).items()
    }
    if not buckets:
        return " " * width
    low, high = min(buckets), max(buckets)
    span = max(high - low + 1, 1)
    cells = [0] * width
    for idx, count in buckets.items():
        cell = min(int((idx - low) * width / span), width - 1)
        cells[cell] += count
    peak = max(cells)
    out = []
    for value in cells:
        if value == 0:
            out.append(" ")
        else:
            out.append(_BLOCKS[min(int(value * 8 / peak), 7)])
    return "".join(out)


def _fmt_quantiles(hist: Histogram) -> str:
    return (
        f"p50={hist.quantile(0.5):.4g} p90={hist.quantile(0.9):.4g} "
        f"p99={hist.quantile(0.99):.4g} max={hist.max:.4g}"
    )


def render_top(state: Dict[str, Any]) -> str:
    """Render a ``/state`` snapshot as a terminal dashboard frame."""
    campaign = state.get("campaign", {})
    counters = state.get("counters", {})
    histograms = state.get("histograms", {})
    lines = []
    lines.append(
        "campaign: {state} — {done}/{total} done "
        "({running} running, {retried} retried, {quarantined} quarantined, "
        "{resumed} resumed)".format(
            state=campaign.get("state", "?"),
            done=campaign.get("done", 0),
            total=campaign.get("total", 0),
            running=campaign.get("running", 0),
            retried=campaign.get("retried", 0),
            quarantined=campaign.get("quarantined", 0),
            resumed=campaign.get("resumed", 0),
        )
    )
    backend = campaign.get("backend")
    experiment = campaign.get("experiment")
    shard = campaign.get("shard")
    detail = [
        f"backend={backend}" if backend else "",
        f"experiment={experiment}" if experiment else "",
        f"shard={shard}" if shard else "",
    ]
    detail = [part for part in detail if part]
    if detail:
        lines.append("  " + "  ".join(detail))

    workers = state.get("workers", {})
    if workers:
        parts = []
        for worker_id in sorted(workers):
            entry = workers[worker_id]
            job = entry.get("job")
            parts.append(
                f"{worker_id}:{'idle' if job is None else 'job %s' % job[0]}"
            )
        lines.append(f"workers: {len(workers)} — " + " ".join(parts))

    hits = counters.get("opt.cache_hits", 0)
    misses = counters.get("opt.cache_misses", 0)
    if hits or misses:
        rate = 100.0 * hits / (hits + misses)
        lines.append(
            f"opt cache: {rate:.1f}% hit ({int(hits)}/{int(hits + misses)})"
        )
    memo_hits = counters.get("pool.memo_hits", 0)
    if memo_hits:
        lines.append(f"pool memo hits: {int(memo_hits)}")

    serve_requests = counters.get("serve.requests", 0)
    if serve_requests:
        lines.append(
            "serve: {requests} requests — {hits} cache hits, "
            "{coalesced} coalesced, {batched} batched jobs".format(
                requests=int(serve_requests),
                hits=int(counters.get("serve.cache_hit", 0)),
                coalesced=int(counters.get("serve.coalesced", 0)),
                batched=int(counters.get("serve.batched_jobs", 0)),
            )
        )

    for name in (
        "run.med",
        "engine.job_seconds",
        "opt.for_part_seconds",
        "serve.request_seconds",
        "serve.batch_size",
    ):
        payload = histograms.get(name)
        if not payload or not payload.get("count"):
            continue
        hist = Histogram.from_dict(payload)
        lines.append(
            f"{name} [{sparkline(payload)}] n={hist.count} {_fmt_quantiles(hist)}"
        )
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# HTTP server
# ----------------------------------------------------------------------


class HardenedHTTPServer(ThreadingHTTPServer):
    """`ThreadingHTTPServer` hardened for long-lived daemons.

    ``allow_reuse_address`` sets ``SO_REUSEADDR`` before bind, so a
    daemon restarted right after a crash can rebind its port instead
    of dying with ``EADDRINUSE`` while the old socket sits in
    ``TIME_WAIT``.  Handler threads are daemonic: a wedged connection
    never blocks process exit.  The listen backlog is raised from
    socketserver's default of 5 — a burst of concurrent clients (the
    serve daemon's normal load) must queue, not get connection resets.
    (The per-connection socket timeout lives on the handler class —
    see ``_Handler.timeout``.)
    """

    allow_reuse_address = True
    daemon_threads = True
    request_queue_size = 128


class MetricsServer:
    """Serve a hub over HTTP from a daemon thread.

    ``port=0`` binds an ephemeral port; read the chosen one from
    ``server.port`` after construction.  Binding is loopback-only by
    default — forward the port if a remote Prometheus must scrape it.

    ``handler_base`` lets callers mount extra routes (the serve daemon
    adds ``POST /compile``) by passing a ``_Handler`` subclass;
    ``request_timeout`` tunes the per-connection socket timeout.
    """

    def __init__(
        self,
        hub: MetricsHub,
        port: int = 0,
        host: str = "127.0.0.1",
        handler_base: Optional[type] = None,
        request_timeout: float = REQUEST_TIMEOUT,
    ) -> None:
        self.hub = hub
        handler = type(
            "_HubHandler",
            (handler_base or _Handler,),
            {"hub": hub, "timeout": request_timeout},
        )
        self._httpd = HardenedHTTPServer((host, port), handler)
        self.host = host
        self.port = self._httpd.server_address[1]
        self._thread: Optional[threading.Thread] = None

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def start(self) -> "MetricsServer":
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="repro-metrics",
            daemon=True,
        )
        self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "MetricsServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()


class _Handler(BaseHTTPRequestHandler):
    hub: MetricsHub  # injected via subclass in MetricsServer

    #: per-connection socket timeout (StreamRequestHandler applies it
    #: in setup(); a stalled client trips socket.timeout and the
    #: connection is closed instead of wedging its thread)
    timeout: float = REQUEST_TIMEOUT

    def route_get(self, path: str) -> Optional[Tuple[bytes, str]]:
        """Resolve a GET path to ``(body, content_type)`` or ``None``.

        Subclasses (the serve daemon) extend this and fall back to
        ``super().route_get(path)`` for the stock endpoints.
        """
        if path == "/metrics":
            return (
                render_prometheus(self.hub.snapshot()).encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/healthz":
            return (
                json.dumps(self.hub.healthz(), sort_keys=True).encode(),
                "application/json",
            )
        if path == "/state":
            return (
                json.dumps(
                    self.hub.snapshot(), sort_keys=True, default=str
                ).encode(),
                "application/json",
            )
        return None

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        path = self.path.split("?", 1)[0]
        try:
            resolved = self.route_get(path)
        except Exception as exc:  # never let a scrape kill the server
            self.send_error(500, f"snapshot failed: {exc}")
            return
        if resolved is None:
            self.send_error(404, "unknown path (try /metrics, /healthz)")
            return
        body, ctype = resolved
        self.send_response(200)
        self.send_header("Content-Type", ctype)
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, format: str, *args: Any) -> None:
        pass  # scrapes must not spam the campaign's stderr
