"""Run manifests: what ran, with which config/seeds, and how long.

A manifest is one JSON object (written as a JSONL line so several runs
can share a file next to the benchmark outputs) recording everything
needed to re-execute or audit a run: a config hash, the spawned seeds,
the git revision, and per-phase wall-clock totals.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import subprocess
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

__all__ = ["config_hash", "git_revision", "RunManifest"]

_SCHEMA = 1


def config_hash(config: Any) -> str:
    """Stable short hash of a config (dataclass, dict, or repr-able)."""
    if dataclasses.is_dataclass(config) and not isinstance(config, type):
        payload = dataclasses.asdict(config)
    elif isinstance(config, dict):
        payload = config
    else:
        payload = {"repr": repr(config)}
    text = json.dumps(payload, sort_keys=True, default=str)
    return hashlib.sha256(text.encode()).hexdigest()[:16]


def git_revision(cwd: Optional[str] = None) -> Optional[str]:
    """Current git commit hash, or ``None`` outside a repository."""
    try:
        out = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.TimeoutExpired):
        return None
    if out.returncode != 0:
        return None
    return out.stdout.strip() or None


@dataclass
class RunManifest:
    """One run's reproducibility record."""

    command: str
    config_hash: Optional[str] = None
    base_seed: Optional[int] = None
    #: per-run spawned seed records (see ``RunSpec.seed_info``)
    seeds: List[Dict[str, Any]] = field(default_factory=list)
    git_rev: Optional[str] = None
    #: span-name -> {"count", "total"} wall-clock rollup
    phase_timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    extra: Dict[str, Any] = field(default_factory=dict)
    created: float = field(default_factory=time.time)
    schema: int = _SCHEMA

    @classmethod
    def build(
        cls,
        command: str,
        config: Any = None,
        base_seed: Optional[int] = None,
        **kwargs,
    ) -> "RunManifest":
        """Construct a manifest, hashing ``config`` and reading git."""
        return cls(
            command=command,
            config_hash=None if config is None else config_hash(config),
            base_seed=base_seed,
            git_rev=git_revision(),
            **kwargs,
        )

    def add_seed(self, seed_info: Dict[str, Any]) -> None:
        self.seeds.append(seed_info)

    def to_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["type"] = "manifest"
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "RunManifest":
        fields = {f.name for f in dataclasses.fields(cls)}
        return cls(**{k: v for k, v in payload.items() if k in fields})

    def append_to(self, path: str) -> None:
        """Append this manifest as one JSONL line."""
        with open(path, "a") as handle:
            handle.write(json.dumps(self.to_dict(), default=str) + "\n")

    @classmethod
    def load_all(cls, path: str) -> List["RunManifest"]:
        """Read every manifest record from a JSONL file."""
        manifests = []
        with open(path) as handle:
            for line in handle:
                line = line.strip()
                if not line:
                    continue
                payload = json.loads(line)
                if payload.get("type") == "manifest":
                    manifests.append(cls.from_dict(payload))
        return manifests
