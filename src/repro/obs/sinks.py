"""Telemetry sinks: in-memory (tests), JSONL file, stderr progress.

A sink is anything with ``record(dict)``, ``flush()``, and ``close()``.
Sinks never raise into the instrumented code path: a telemetry failure
must not change an algorithm's outcome.
"""

from __future__ import annotations

import json
import os
import sys
from typing import Any, Dict, List, Optional, TextIO

__all__ = ["Sink", "MemorySink", "JsonlSink", "NullSink", "StderrSink"]


class Sink:
    """Base class / protocol for telemetry sinks."""

    def record(self, record: Dict[str, Any]) -> None:  # pragma: no cover
        raise NotImplementedError

    def flush(self) -> None:
        pass

    def close(self) -> None:
        self.flush()


class NullSink(Sink):
    """Discards every record.

    Used when live counters/histograms are wanted (e.g. a
    ``--metrics-port`` campaign without ``--trace``) but no trace
    output should be written.
    """

    def record(self, record: Dict[str, Any]) -> None:
        pass


class MemorySink(Sink):
    """Keeps every record in a list — the sink used by the test suite."""

    def __init__(self) -> None:
        self.records: List[Dict[str, Any]] = []

    def record(self, record: Dict[str, Any]) -> None:
        self.records.append(record)

    # -- convenience views --------------------------------------------
    def spans(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("type") == "span" and (name is None or r["name"] == name)
        ]

    def events(self, name: Optional[str] = None) -> List[Dict[str, Any]]:
        return [
            r
            for r in self.records
            if r.get("type") == "event" and (name is None or r["name"] == name)
        ]

    def counters(self) -> Dict[str, float]:
        merged: Dict[str, float] = {}
        for record in self.records:
            if record.get("type") == "counters":
                for key, value in record.get("values", {}).items():
                    merged[key] = merged.get(key, 0) + value
        return merged


class JsonlSink(Sink):
    """Appends one JSON object per record to a file.

    The file handle is opened lazily (so constructing the sink in a
    parent process and using it after a fork is safe) and written
    line-buffered via explicit flushes.
    """

    def __init__(self, path: str) -> None:
        self.path = str(path)
        self._handle: Optional[TextIO] = None

    def _ensure(self) -> TextIO:
        if self._handle is None:
            parent = os.path.dirname(self.path)
            if parent:
                os.makedirs(parent, exist_ok=True)
            self._handle = open(self.path, "a")
        return self._handle

    def record(self, record: Dict[str, Any]) -> None:
        self._ensure().write(json.dumps(record, default=str) + "\n")

    def flush(self) -> None:
        if self._handle is not None:
            self._handle.flush()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.flush()
            self._handle.close()
            self._handle = None


class StderrSink(Sink):
    """Human-readable progress lines on stderr.

    Always prints ``run.completed`` events (one line per finished
    algorithm run — the ``--progress`` sink); with ``verbose`` it also
    prints shallow span completions so a long experiment shows a
    heartbeat.
    """

    def __init__(
        self,
        verbose: bool = False,
        max_depth: int = 1,
        stream: Optional[TextIO] = None,
    ) -> None:
        self.verbose = verbose
        self.max_depth = max_depth
        self.stream = stream if stream is not None else sys.stderr

    def record(self, record: Dict[str, Any]) -> None:
        kind = record.get("type")
        if kind == "event" and record.get("name") == "run.completed":
            attrs = record.get("attrs", {})
            parts = [
                str(attrs.get("benchmark", "?")),
                str(attrs.get("algorithm", "?")),
                f"seed={attrs.get('seed', '?')}",
            ]
            elapsed = attrs.get("elapsed")
            if elapsed is not None:
                parts.append(f"{float(elapsed):.2f}s")
            worker = attrs.get("worker")
            if worker is not None:
                parts.append(f"worker={worker}")
            print("[repro] run done:", " ".join(parts), file=self.stream)
        elif self.verbose and kind == "span" and record.get("depth", 0) <= self.max_depth:
            dur = record.get("dur") or 0.0
            attrs = record.get("attrs", {})
            detail = " ".join(f"{k}={v}" for k, v in attrs.items())
            line = f"[repro] {record['name']} {dur:.3f}s"
            if detail:
                line += f" ({detail})"
            print(line, file=self.stream)

    def flush(self) -> None:
        try:
            self.stream.flush()
        except ValueError:  # stream already closed (interpreter teardown)
            pass
