"""2D truth-table construction for a variable partition.

Theorem 1 of the paper (Ashenhurst) is stated on a 2D truth table whose
rows are indexed by the free set ``A`` and columns by the bound set
``B``.  This module reshapes per-input vectors (function bits, input
probabilities, per-input costs) into that layout and back.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from ..caching import LruCache
from .function import BooleanFunction
from .partition import Partition

__all__ = [
    "table_indices",
    "gather_index",
    "row_col_indices",
    "to_matrix",
    "from_matrix",
    "component_matrix",
    "TwoDimensionalTable",
]

#: cached (scatter, gather) permutation pairs keyed by (partition, n).
#: One entry costs two int64 vectors of length 2**n.  The size must
#: clear the working set of a search run: the Table-II default scale
#: (n = 12, b = 7) can visit all C(12, 7) = 792 partitions, and a
#: smaller cache thrashes — every miss reruns the bit-extraction that
#: the cache exists to amortise.
_INDEX_CACHE = LruCache("table_index", maxsize=1024)

#: cached (rows, cols) coordinate vectors, same keying as above
_ROWCOL_CACHE = LruCache("table_rowcol", maxsize=1024)


def table_indices(
    partition: Partition, n_inputs: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Cached (scatter, gather) index pair for a partition's 2D layout.

    ``scatter`` satisfies ``matrix.flat[scatter[x]] = values[x]`` (it is
    :meth:`Partition.scatter_index`); ``gather`` is its inverse
    permutation, ``matrix.flat = values[gather]``.  Both arrays are
    marked read-only because they are shared across callers.
    """
    key = (partition, n_inputs)
    cached = _INDEX_CACHE.get(key)
    if cached is not None:
        return cached
    partition.validate_for(n_inputs)
    # The gather permutation is a pure bit reordering of 0..2**n-1, so
    # it falls out of a reshape/transpose of ``arange`` directly: axis
    # ``k`` of the (2,)*n grid is word bit ``n-1-k``, and laying the
    # free bits (most significant first) ahead of the bound bits walks
    # the 2D table in row-major order.  Equal to inverting
    # ``partition.scatter_index`` — an order of magnitude cheaper than
    # the per-bit extraction (covered by a unit test).
    order = (*reversed(partition.free), *reversed(partition.bound))
    axes = [n_inputs - 1 - bit for bit in order]
    grid = np.arange(1 << n_inputs, dtype=np.int64).reshape((2,) * n_inputs)
    gather = np.ascontiguousarray(grid.transpose(axes)).reshape(-1)
    scatter = np.empty_like(gather)
    scatter[gather] = np.arange(gather.size, dtype=np.int64)
    scatter.setflags(write=False)
    gather.setflags(write=False)
    pair = (scatter, gather)
    _INDEX_CACHE.put(key, pair)
    return pair


def gather_index(partition: Partition, n_inputs: int) -> np.ndarray:
    """Cached gather permutation: ``matrix.flat = values[gather]``."""
    return table_indices(partition, n_inputs)[1]


def row_col_indices(
    partition: Partition, n_inputs: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Cached ``(rows, cols)`` of every input word under ``partition``.

    Equal to ``partition.row_col_of(all_inputs(n_inputs))`` — recovered
    from the cached scatter permutation (``scatter = rows * n_cols +
    cols`` with ``cols < n_cols``), so no bit extraction runs on a hit.
    """
    key = (partition, n_inputs)
    cached = _ROWCOL_CACHE.get(key)
    if cached is not None:
        return cached
    scatter = table_indices(partition, n_inputs)[0]
    rows, cols = np.divmod(scatter, partition.n_cols)
    rows.setflags(write=False)
    cols.setflags(write=False)
    pair = (rows, cols)
    _ROWCOL_CACHE.put(key, pair)
    return pair


def to_matrix(values: np.ndarray, partition: Partition, n_inputs: int) -> np.ndarray:
    """Reshape a per-input vector into the partition's 2D layout.

    Entry ``(r, c)`` of the result is ``values[x]`` for the unique input
    word ``x`` whose free bits spell ``r`` and bound bits spell ``c``.
    """
    values = np.asarray(values)
    if values.shape != (1 << n_inputs,):
        raise ValueError(
            f"values has shape {values.shape}, expected ({1 << n_inputs},)"
        )
    idx = gather_index(partition, n_inputs)
    return values[idx].reshape(partition.n_rows, partition.n_cols)


def from_matrix(
    matrix: np.ndarray, partition: Partition, n_inputs: int
) -> np.ndarray:
    """Inverse of :func:`to_matrix`: flatten a 2D table back per input."""
    matrix = np.asarray(matrix)
    expected = (partition.n_rows, partition.n_cols)
    if matrix.shape != expected:
        raise ValueError(f"matrix has shape {matrix.shape}, expected {expected}")
    idx = table_indices(partition, n_inputs)[0]
    return matrix.reshape(-1)[idx]


def component_matrix(
    function: BooleanFunction, k: int, partition: Partition
) -> np.ndarray:
    """2D truth table of output bit ``k`` under ``partition``."""
    return to_matrix(function.component(k), partition, function.n_inputs)


class TwoDimensionalTable:
    """A 2D truth table of a single-output function under a partition.

    Wraps the raw matrix with the row-classification queries used by
    exact decomposition (Theorem 1) and by tests that mirror the
    paper's Examples 1 and 2.
    """

    def __init__(self, bits: np.ndarray, partition: Partition, n_inputs: int):
        bits = np.asarray(bits)
        if np.any((bits != 0) & (bits != 1)):
            raise ValueError("2D truth tables hold single-output (0/1) functions")
        self.partition = partition
        self.n_inputs = n_inputs
        self.matrix = to_matrix(bits.astype(np.uint8), partition, n_inputs)

    @classmethod
    def of_component(
        cls, function: BooleanFunction, k: int, partition: Partition
    ) -> "TwoDimensionalTable":
        return cls(function.component(k), partition, function.n_inputs)

    @property
    def n_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_cols(self) -> int:
        return self.matrix.shape[1]

    def row(self, r: int) -> np.ndarray:
        return self.matrix[r]

    def distinct_rows(self) -> np.ndarray:
        """Unique row patterns in order of first appearance."""
        _, first = np.unique(self.matrix, axis=0, return_index=True)
        return self.matrix[np.sort(first)]

    def column_multiplicity(self) -> int:
        """Number of distinct rows — the classical decomposition metric.

        A function is disjointly decomposable with a *single-output*
        ``φ`` exactly when the distinct rows fit into
        ``{0, 1, V, ~V}`` (Theorem 1), which implies a column
        multiplicity of at most 4 (and at most 2 distinct non-constant
        patterns up to complement).
        """
        return len(self.distinct_rows())

    def flatten(self) -> np.ndarray:
        """Back to a per-input bit vector."""
        return from_matrix(self.matrix, self.partition, self.n_inputs)
