"""2D truth-table construction for a variable partition.

Theorem 1 of the paper (Ashenhurst) is stated on a 2D truth table whose
rows are indexed by the free set ``A`` and columns by the bound set
``B``.  This module reshapes per-input vectors (function bits, input
probabilities, per-input costs) into that layout and back.
"""

from __future__ import annotations

import numpy as np

from .function import BooleanFunction
from .partition import Partition

__all__ = [
    "to_matrix",
    "from_matrix",
    "component_matrix",
    "TwoDimensionalTable",
]


def to_matrix(values: np.ndarray, partition: Partition, n_inputs: int) -> np.ndarray:
    """Reshape a per-input vector into the partition's 2D layout.

    Entry ``(r, c)`` of the result is ``values[x]`` for the unique input
    word ``x`` whose free bits spell ``r`` and bound bits spell ``c``.
    """
    values = np.asarray(values)
    if values.shape != (1 << n_inputs,):
        raise ValueError(
            f"values has shape {values.shape}, expected ({1 << n_inputs},)"
        )
    idx = partition.scatter_index(n_inputs)
    matrix = np.empty_like(values)
    matrix[idx] = values
    return matrix.reshape(partition.n_rows, partition.n_cols)


def from_matrix(
    matrix: np.ndarray, partition: Partition, n_inputs: int
) -> np.ndarray:
    """Inverse of :func:`to_matrix`: flatten a 2D table back per input."""
    matrix = np.asarray(matrix)
    expected = (partition.n_rows, partition.n_cols)
    if matrix.shape != expected:
        raise ValueError(f"matrix has shape {matrix.shape}, expected {expected}")
    idx = partition.scatter_index(n_inputs)
    return matrix.reshape(-1)[idx]


def component_matrix(
    function: BooleanFunction, k: int, partition: Partition
) -> np.ndarray:
    """2D truth table of output bit ``k`` under ``partition``."""
    return to_matrix(function.component(k), partition, function.n_inputs)


class TwoDimensionalTable:
    """A 2D truth table of a single-output function under a partition.

    Wraps the raw matrix with the row-classification queries used by
    exact decomposition (Theorem 1) and by tests that mirror the
    paper's Examples 1 and 2.
    """

    def __init__(self, bits: np.ndarray, partition: Partition, n_inputs: int):
        bits = np.asarray(bits)
        if np.any((bits != 0) & (bits != 1)):
            raise ValueError("2D truth tables hold single-output (0/1) functions")
        self.partition = partition
        self.n_inputs = n_inputs
        self.matrix = to_matrix(bits.astype(np.uint8), partition, n_inputs)

    @classmethod
    def of_component(
        cls, function: BooleanFunction, k: int, partition: Partition
    ) -> "TwoDimensionalTable":
        return cls(function.component(k), partition, function.n_inputs)

    @property
    def n_rows(self) -> int:
        return self.matrix.shape[0]

    @property
    def n_cols(self) -> int:
        return self.matrix.shape[1]

    def row(self, r: int) -> np.ndarray:
        return self.matrix[r]

    def distinct_rows(self) -> np.ndarray:
        """Unique row patterns in order of first appearance."""
        _, first = np.unique(self.matrix, axis=0, return_index=True)
        return self.matrix[np.sort(first)]

    def column_multiplicity(self) -> int:
        """Number of distinct rows — the classical decomposition metric.

        A function is disjointly decomposable with a *single-output*
        ``φ`` exactly when the distinct rows fit into
        ``{0, 1, V, ~V}`` (Theorem 1), which implies a column
        multiplicity of at most 4 (and at most 2 distinct non-constant
        patterns up to complement).
        """
        return len(self.distinct_rows())

    def flatten(self) -> np.ndarray:
        """Back to a per-input bit vector."""
        return from_matrix(self.matrix, self.partition, self.n_inputs)
