"""Boolean-function substrate: truth tables, partitions, decompositions.

This subpackage is self-contained (it does not import from the
optimisation or hardware layers) and provides the data model on which
the paper's algorithms are defined.
"""

from .analysis import (
    PartitionProfile,
    column_multiplicity,
    decomposability_report,
    minimum_flip_distance,
    profile_output_bit,
)
from .function import BooleanFunction
from .partition import Partition, all_partitions, partition_count, random_partition
from .packed import (
    PackedTable,
    cofactor,
    hamming,
    pack_bits,
    popcount,
    restrict,
    unpack_bits,
)
from .truth_table import TwoDimensionalTable, component_matrix, from_matrix, to_matrix
from .decomposition import (
    BoundOnlyDecomposition,
    MultiSharedDecomposition,
    Decomposition,
    DisjointDecomposition,
    NonDisjointDecomposition,
    RowType,
    apply_types,
    enumerate_exact_decompositions,
    find_exact_decomposition,
)
from .synthesis import (
    describe_decomposition,
    free_expression,
    lut_image_bits,
    lut_image_hex,
    phi_expression,
    sop_expression,
)

__all__ = [
    "PartitionProfile",
    "column_multiplicity",
    "decomposability_report",
    "minimum_flip_distance",
    "profile_output_bit",
    "BooleanFunction",
    "Partition",
    "all_partitions",
    "partition_count",
    "random_partition",
    "PackedTable",
    "cofactor",
    "hamming",
    "pack_bits",
    "popcount",
    "restrict",
    "unpack_bits",
    "TwoDimensionalTable",
    "component_matrix",
    "from_matrix",
    "to_matrix",
    "BoundOnlyDecomposition",
    "MultiSharedDecomposition",
    "Decomposition",
    "DisjointDecomposition",
    "NonDisjointDecomposition",
    "RowType",
    "apply_types",
    "enumerate_exact_decompositions",
    "find_exact_decomposition",
    "describe_decomposition",
    "free_expression",
    "lut_image_bits",
    "lut_image_hex",
    "phi_expression",
    "sop_expression",
]
