"""Bit-packed truth tables: one ``uint64`` bit-plane per output bit.

The classic logic-synthesis representation (ABC-style): a truth table
over ``n`` inputs with ``k`` output bits becomes ``k`` planes of
``ceil(2**n / 64)`` machine words, so cofactor extraction and
error-distance accumulation turn into word-wide bitwise ops plus
popcounts, and the storage cost drops from 8 bytes per entry
(``int64``) to ``k`` *bits* per entry — a ``64 / k`` shrink (8x for
byte-wide outputs, 5.3x for the default 12-bit Table-II functions).

Layout is fully deterministic and platform-independent: plane ``j``
word ``w`` bit ``i`` (little-endian within the word) holds output bit
``j`` of entry ``64 * w + i``; pad bits beyond the table length are
always zero, so two packed tables are equal iff their planes are
byte-equal — which is what lets the shared-memory ``TableArena`` and
the ``opt.memo`` digest keys address packed pages by content.

The module mirrors :mod:`repro.boolean.truth_table` in spirit: pure
functions plus a small immutable container with a ``_trusted``
constructor for internal callers that have already validated their
inputs.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Dict, Optional

import numpy as np

__all__ = [
    "WORD_BITS",
    "pack_bits",
    "unpack_bits",
    "popcount",
    "popcount_words",
    "hamming",
    "cofactor",
    "restrict",
    "PackedTable",
    "WeightPlanes",
]

WORD_BITS = 64

# Little-endian uint64 view dtype: makes the packed layout identical on
# big-endian hosts (numpy interprets the bytes, not the native order).
_WORD_DTYPE = np.dtype("<u8")

try:  # numpy >= 2.0
    _bitwise_count = np.bitwise_count
except AttributeError:  # pragma: no cover - exercised only on old numpy
    _POPCOUNT8 = np.array([bin(i).count("1") for i in range(256)], dtype=np.uint8)

    def _bitwise_count(words: np.ndarray) -> np.ndarray:
        u8 = np.ascontiguousarray(words, dtype=_WORD_DTYPE).view(np.uint8)
        per_byte = _POPCOUNT8[u8].reshape(words.shape + (8,))
        return per_byte.sum(axis=-1, dtype=np.uint64)


def n_words(length: int) -> int:
    """Words needed to hold ``length`` bits (at least one)."""
    if length < 1:
        raise ValueError("packed planes need at least one entry")
    return (length + WORD_BITS - 1) // WORD_BITS


def pack_bits(bits: np.ndarray) -> np.ndarray:
    """Pack 0/1 values along the last axis into little-endian words.

    ``(..., length)`` → ``(..., n_words(length))`` ``uint64``; pad bits
    beyond ``length`` are zero.  Any nonzero input counts as a one.
    """
    arr = np.asarray(bits)
    if arr.ndim == 0:
        raise ValueError("pack_bits needs at least one axis")
    length = arr.shape[-1]
    words = n_words(length)
    packed = np.packbits(arr != 0, axis=-1, bitorder="little")
    pad = words * 8 - packed.shape[-1]
    if pad:
        packed = np.concatenate(
            [packed, np.zeros(arr.shape[:-1] + (pad,), dtype=np.uint8)], axis=-1
        )
    return np.ascontiguousarray(packed).view(_WORD_DTYPE)


def unpack_bits(words: np.ndarray, length: int) -> np.ndarray:
    """Inverse of :func:`pack_bits`: ``(..., W)`` words → ``(..., length)``."""
    arr = np.ascontiguousarray(words, dtype=_WORD_DTYPE)
    if arr.ndim == 0:
        raise ValueError("unpack_bits needs at least one axis")
    if arr.shape[-1] != n_words(length):
        raise ValueError(
            f"expected {n_words(length)} words for {length} bits, "
            f"got {arr.shape[-1]}"
        )
    u8 = arr.view(np.uint8)
    bits = np.unpackbits(u8, axis=-1, bitorder="little")
    return bits[..., :length]


def popcount_words(words: np.ndarray) -> np.ndarray:
    """Per-word set-bit counts (vectorised popcount)."""
    return _bitwise_count(np.asarray(words, dtype=np.uint64))


def popcount(words: np.ndarray, axis: Optional[int] = None) -> np.ndarray:
    """Total set bits in ``words`` (optionally along one axis)."""
    counts = popcount_words(words)
    if axis is None:
        return int(counts.sum(dtype=np.int64))
    return counts.sum(axis=axis, dtype=np.int64)


def hamming(a: np.ndarray, b: np.ndarray) -> int:
    """Number of differing bits between two packed planes."""
    return popcount(np.bitwise_xor(np.asarray(a, np.uint64), np.asarray(b, np.uint64)))


# Periodic compress masks: _PERIOD_MASKS[j] keeps, in every
# ``2**(j+1)``-bit period, the low ``2**j`` bits — i.e. the positions
# whose index bit ``j`` is zero.  _PERIOD_MASKS[6] is the low word half.
def _period_mask(j: int) -> np.uint64:
    block = (1 << (1 << j)) - 1
    period = 1 << (j + 1)
    mask = 0
    for start in range(0, WORD_BITS, period):
        mask |= block << start
    return np.uint64(mask & 0xFFFFFFFFFFFFFFFF)


_PERIOD_MASKS = [_period_mask(j) for j in range(7)]


def cofactor(words: np.ndarray, length: int, var: int, value: int) -> np.ndarray:
    """Packed cofactor: restrict a plane to ``input bit var == value``.

    ``words`` is one packed plane of a table over ``n`` inputs
    (``length == 2**n``); the result is the packed plane of the
    ``2**(n-1)``-entry cofactor.  For ``var >= 6`` this is pure word
    block selection; below that, a butterfly compress over the periodic
    masks — no unpacking in either case.
    """
    arr = np.ascontiguousarray(words, dtype=np.uint64)
    n = length.bit_length() - 1
    if length != 1 << n or n < 1:
        raise ValueError("cofactor needs a power-of-two table length >= 2")
    if not 0 <= var < n:
        raise ValueError(f"variable {var} out of range for {n} inputs")
    if value not in (0, 1):
        raise ValueError("cofactor value must be 0 or 1")
    if arr.shape != (n_words(length),):
        raise ValueError("words/length mismatch")
    if var >= 6:
        stride = 1 << (var - 6)
        return np.ascontiguousarray(arr.reshape(-1, 2, stride)[:, value, :].ravel())
    x = arr.copy()
    if value:
        x >>= np.uint64(1 << var)
    x &= _PERIOD_MASKS[var]
    for j in range(var, 6):
        x = (x | (x >> np.uint64(1 << j))) & _PERIOD_MASKS[j + 1]
    if x.shape[0] == 1:  # result fits a single word's low half
        return x
    return np.ascontiguousarray(x[0::2] | (x[1::2] << np.uint64(32)))


def restrict(words: np.ndarray, length: int, assignment: Dict[int, int]) -> np.ndarray:
    """Iterated :func:`cofactor` over ``{var: value}`` assignments.

    Variables are eliminated highest-first so the remaining indices
    never shift under the caller's feet.
    """
    out = np.ascontiguousarray(words, dtype=np.uint64)
    for var in sorted(assignment, reverse=True):
        out = cofactor(out, length, var, assignment[var])
        length //= 2
    return out


class WeightPlanes:
    """Bit-plane decomposition of a non-negative integer weight vector.

    ``WeightPlanes(w)`` stores plane ``b`` as the packed 0/1 vector of
    bit ``b`` of every weight, so a *weighted popcount* over any packed
    mask — ``sum(w[i] for set bits i of mask)`` — becomes one popcount
    per plane folded with Python-int (arbitrary-precision) arithmetic:

        masked_sum(mask) = sum_b 2**b * popcount(planes[b] & mask)

    This is the per-output-bit weighted-popcount primitive behind the
    widened packed-kernel eligibility gate
    (:func:`repro.core.opt_for_part._packed_eligible`): the gate needs
    the *exact* integer total ``sum_i cost_i * w_i`` for weight vectors
    scaled out of a general (non-constant) input distribution, and the
    plane fold accumulates it without ever rounding — every partial is
    an exact int, however large.
    """

    __slots__ = ("length", "planes")

    def __init__(self, weights: np.ndarray) -> None:
        w = np.asarray(weights)
        if w.ndim != 1:
            raise ValueError("WeightPlanes expects a flat weight vector")
        if w.size == 0:
            raise ValueError("WeightPlanes needs at least one weight")
        if not np.issubdtype(w.dtype, np.integer):
            raise ValueError("WeightPlanes needs integer weights")
        if int(w.min()) < 0:
            raise ValueError("WeightPlanes needs non-negative weights")
        bits = int(w.max()).bit_length()
        if bits:
            shifts = np.arange(bits, dtype=w.dtype)
            plane_bits = ((w[None, :] >> shifts[:, None]) & 1).astype(np.uint8)
            planes = pack_bits(plane_bits)
        else:  # all-zero weights: a single zero plane keeps shapes sane
            planes = np.zeros((1, n_words(w.size)), dtype=_WORD_DTYPE)
        planes.setflags(write=False)
        self.length = int(w.size)
        self.planes = planes

    def masked_sum(self, mask_words: np.ndarray) -> int:
        """Exact ``sum(w[i] for set bits i of mask)`` as a Python int."""
        mask = np.asarray(mask_words, dtype=np.uint64)
        if mask.shape != (self.planes.shape[-1],):
            raise ValueError("mask/plane word-count mismatch")
        counts = popcount(np.bitwise_and(self.planes, mask[None, :]), axis=-1)
        total = 0
        for bit, count in enumerate(counts):
            total += int(count) << bit
        return total

    def total(self) -> int:
        """Exact sum of all weights (``masked_sum`` of the full mask)."""
        full = np.full(self.planes.shape[-1], ~np.uint64(0), dtype=np.uint64)
        return self.masked_sum(full)


class PackedTable:
    """An immutable multi-output truth table in bit-plane form.

    ``planes`` has shape ``(n_outputs, n_words(length))``; plane ``j``
    is output bit ``j`` of every entry, packed little-endian.  Pad bits
    are guaranteed zero, so :meth:`digest` content-addresses the table.
    """

    __slots__ = ("length", "n_outputs", "planes")

    def __init__(self, table: np.ndarray, n_outputs: int) -> None:
        table = np.asarray(table)
        if table.ndim != 1:
            raise ValueError("PackedTable expects a flat entry array")
        if n_outputs < 1:
            raise ValueError("n_outputs must be >= 1")
        if table.size and (table.min() < 0 or int(table.max()) >> n_outputs):
            raise ValueError(
                f"table entries do not fit in {n_outputs} output bits"
            )
        shifts = np.arange(n_outputs, dtype=table.dtype if table.size else np.int64)
        bits = ((table[None, :] >> shifts[:, None]) & 1).astype(np.uint8)
        planes = pack_bits(bits)
        planes.setflags(write=False)
        object.__setattr__(self, "length", int(table.shape[0]))
        object.__setattr__(self, "n_outputs", int(n_outputs))
        object.__setattr__(self, "planes", planes)

    def __setattr__(self, name, value):  # immutability, mirroring _trusted use
        raise AttributeError("PackedTable is immutable")

    @classmethod
    def from_table(cls, table: np.ndarray, n_outputs: int) -> "PackedTable":
        """Pack a flat ``int`` entry array (validating the bit width)."""
        return cls(table, n_outputs)

    @classmethod
    def _trusted(
        cls, length: int, n_outputs: int, planes: np.ndarray
    ) -> "PackedTable":
        """Adopt already-packed planes without re-validating.

        Mirrors the ``_trusted`` constructors in
        :mod:`repro.boolean.decomposition`: internal callers (the
        shared-memory arena, the packed kernel) that produced the
        planes themselves skip the pack/validate pass.  ``planes``
        must be ``(n_outputs, n_words(length))`` ``uint64`` with zero
        pad bits.
        """
        instance = object.__new__(cls)
        planes = np.ascontiguousarray(planes, dtype=_WORD_DTYPE)
        planes.setflags(write=False)
        object.__setattr__(instance, "length", int(length))
        object.__setattr__(instance, "n_outputs", int(n_outputs))
        object.__setattr__(instance, "planes", planes)
        return instance

    @property
    def nbytes(self) -> int:
        return self.planes.nbytes

    def to_table(self, dtype=np.int64) -> np.ndarray:
        """Unpack back to the flat entry array (round-trip inverse)."""
        bits = unpack_bits(self.planes, self.length).astype(dtype)
        shifts = np.arange(self.n_outputs, dtype=dtype)[:, None]
        return (bits << shifts).sum(axis=0, dtype=dtype)

    def component(self, k: int) -> np.ndarray:
        """Output bit ``k`` as an unpacked 0/1 ``uint8`` vector."""
        return unpack_bits(self.planes[k], self.length)

    def packed_component(self, k: int) -> np.ndarray:
        """Output bit ``k`` as its packed word plane."""
        return self.planes[k]

    def component_error_counts(self, other: "PackedTable") -> np.ndarray:
        """Per-output-bit Hamming distances (word-XOR + popcount)."""
        if (self.length, self.n_outputs) != (other.length, other.n_outputs):
            raise ValueError("shape mismatch")
        return popcount(np.bitwise_xor(self.planes, other.planes), axis=-1)

    def med(self, other: "PackedTable", p: Optional[np.ndarray] = None) -> float:
        """Exact mean error distance for single-output tables.

        A single output bit's error distance is ``|a - b| = a XOR b``
        per entry, so under a uniform (or any constant) input
        distribution the MED is one popcount.  Multi-output tables
        have carry interactions that a per-plane popcount cannot see,
        so this deliberately refuses them — use
        :meth:`component_error_counts` per plane instead.
        """
        if self.n_outputs != 1 or other.n_outputs != 1:
            raise ValueError("med is exact only for single-output tables")
        count = hamming(self.planes[0], other.planes[0])
        if p is None:
            return count / self.length
        p = np.asarray(p, dtype=np.float64)
        if p.shape != (self.length,) or (p.size and not np.all(p == p.flat[0])):
            raise ValueError("packed med needs a constant weight vector")
        return float(p.flat[0]) * count

    def digest(self) -> str:
        """Content address: sha1 over layout header + plane bytes."""
        h = hashlib.sha1()
        h.update(b"repro-packed-v1")
        h.update(struct.pack("<qq", self.length, self.n_outputs))
        h.update(np.ascontiguousarray(self.planes).tobytes())
        return h.hexdigest()

    def __eq__(self, other) -> bool:
        if not isinstance(other, PackedTable):
            return NotImplemented
        return (
            self.length == other.length
            and self.n_outputs == other.n_outputs
            and np.array_equal(self.planes, other.planes)
        )

    def __hash__(self) -> int:
        return hash((self.length, self.n_outputs, self.planes.tobytes()))

    def __repr__(self) -> str:
        return (
            f"PackedTable(length={self.length}, n_outputs={self.n_outputs}, "
            f"words={self.planes.shape[-1]})"
        )
