"""Disjoint and non-disjoint decomposition representations.

These classes are the *data model* shared by the optimisation
algorithms (``repro.core``) and the hardware generators
(``repro.hardware``): a decomposition fully determines the contents of
the bound/free tables and the routing-box configuration of the paper's
architectures.

Row types follow the paper's numbering (Theorem 1):

====  =========================
type  row pattern
====  =========================
1     all zeros
2     all ones
3     the pattern vector ``V``
4     the complement of ``V``
====  =========================
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import IntEnum
from typing import Iterator, Optional, Tuple

import numpy as np

from . import ops
from .function import BooleanFunction
from .partition import Partition, all_partitions
from .truth_table import row_col_indices, to_matrix

__all__ = [
    "RowType",
    "Decomposition",
    "DisjointDecomposition",
    "BoundOnlyDecomposition",
    "NonDisjointDecomposition",
    "MultiSharedDecomposition",
    "find_exact_decomposition",
    "enumerate_exact_decompositions",
    "apply_types",
]


class RowType(IntEnum):
    """Row classification of the 2D truth table (paper's types 1-4)."""

    ALL_ZERO = 1
    ALL_ONE = 2
    PATTERN = 3
    COMPLEMENT = 4


def apply_types(types: np.ndarray, pattern: np.ndarray) -> np.ndarray:
    """Expand (V, T) into the full 2D matrix they encode.

    ``types`` has one entry per row, ``pattern`` one per column; the
    result is the matrix whose row ``r`` is the pattern named by
    ``types[r]``.
    """
    types = np.asarray(types, dtype=np.int8)
    pattern = np.asarray(pattern, dtype=np.uint8)
    rows = len(types)
    cols = len(pattern)
    matrix = np.empty((rows, cols), dtype=np.uint8)
    matrix[types == RowType.ALL_ZERO] = 0
    matrix[types == RowType.ALL_ONE] = 1
    matrix[types == RowType.PATTERN] = pattern
    matrix[types == RowType.COMPLEMENT] = 1 - pattern
    return matrix


class Decomposition:
    """Common interface of all decomposition flavours."""

    #: architecture mode implemented by this decomposition
    mode: str = "normal"

    def evaluate(self, n_inputs: int) -> np.ndarray:
        """Per-input 0/1 bits of the decomposed function."""
        raise NotImplementedError

    def lut_entries(self) -> int:
        """Total LUT bits needed to store the decomposition."""
        raise NotImplementedError


@dataclass(frozen=True)
class DisjointDecomposition(Decomposition):
    """``f(X) = F(φ(B), A)`` with explicit (ω, V, T).

    Attributes
    ----------
    partition:
        The variable partition ``ω = (A, B)``.
    pattern:
        The pattern vector ``V`` — one bit per bound-set assignment;
        this is exactly the bound-table image (``φ``).
    types:
        The type vector ``T`` — one :class:`RowType` per free-set
        assignment; together with ``V`` it determines the free table.
    """

    partition: Partition
    pattern: np.ndarray
    types: np.ndarray
    mode: str = field(default="normal")

    def __post_init__(self) -> None:
        pattern = np.asarray(self.pattern, dtype=np.uint8)
        types = np.asarray(self.types, dtype=np.int8)
        if pattern.shape != (self.partition.n_cols,):
            raise ValueError(
                f"pattern vector has length {pattern.shape}, expected "
                f"{self.partition.n_cols}"
            )
        if types.shape != (self.partition.n_rows,):
            raise ValueError(
                f"type vector has length {types.shape}, expected "
                f"{self.partition.n_rows}"
            )
        if np.any((pattern != 0) & (pattern != 1)):
            raise ValueError("pattern vector must be 0/1")
        if np.any((types < 1) | (types > 4)):
            raise ValueError("type vector entries must be in {1, 2, 3, 4}")
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "types", types)

    @classmethod
    def _trusted(
        cls,
        partition: Partition,
        pattern: np.ndarray,
        types: np.ndarray,
        mode: str = "normal",
    ) -> "DisjointDecomposition":
        """Construct without re-validating ``(V, T)``.

        Reserved for the OptForPart kernel, whose half-steps produce
        valid uint8/int8 vectors by construction; ``__post_init__``'s
        checks are pure overhead on that hot path.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "partition", partition)
        object.__setattr__(self, "pattern", pattern)
        object.__setattr__(self, "types", types)
        object.__setattr__(self, "mode", mode)
        return self

    # ------------------------------------------------------------------
    def matrix(self) -> np.ndarray:
        """The 2D truth table encoded by (V, T)."""
        return apply_types(self.types, self.pattern)

    def evaluate(self, n_inputs: int) -> np.ndarray:
        self.partition.validate_for(n_inputs)
        rows, cols = row_col_indices(self.partition, n_inputs)
        phi = self.pattern[cols]
        return self._apply_free(rows, phi)

    def _apply_free(self, rows: np.ndarray, phi: np.ndarray) -> np.ndarray:
        """Evaluate ``F(φ, A)`` given row indices and φ bits."""
        table = self.free_table()
        return table[rows, phi.astype(np.int64)]

    # ------------------------------------------------------------------
    def bound_table(self) -> np.ndarray:
        """Contents of the bound table: ``φ`` over all ``2**b`` columns."""
        return self.pattern.copy()

    def free_table(self) -> np.ndarray:
        """Contents of the free table as ``F[row, φ]`` (shape ``(2**|A|, 2)``).

        Type 1 rows ignore φ and output 0, type 2 rows output 1, type 3
        rows forward φ, type 4 rows invert it.
        """
        rows = self.partition.n_rows
        table = np.empty((rows, 2), dtype=np.uint8)
        t = self.types
        table[t == RowType.ALL_ZERO] = (0, 0)
        table[t == RowType.ALL_ONE] = (1, 1)
        table[t == RowType.PATTERN] = (0, 1)
        table[t == RowType.COMPLEMENT] = (1, 0)
        return table

    def lut_entries(self) -> int:
        """``2**b`` bound entries plus ``2**(n-b+1)`` free entries."""
        return self.partition.n_cols + 2 * self.partition.n_rows

    @property
    def uses_free_table(self) -> bool:
        """False when every row is type 3 (the BTO-eligible case)."""
        return bool(np.any(self.types != RowType.PATTERN))

    def __repr__(self) -> str:
        return (
            f"DisjointDecomposition(partition={self.partition}, "
            f"mode={self.mode!r})"
        )


class BoundOnlyDecomposition(DisjointDecomposition):
    """A decomposition operating in the BTO mode: ``f(X) = φ(B)``.

    Structurally it is a disjoint decomposition whose type vector is
    all type-3 rows, so the free table can be gated off entirely.
    """

    def __init__(self, partition: Partition, pattern: np.ndarray):
        types = np.full(partition.n_rows, RowType.PATTERN, dtype=np.int8)
        super().__init__(partition, pattern, types, mode="bto")

    def lut_entries(self) -> int:
        """Only the bound table is stored/active."""
        return self.partition.n_cols

    def __repr__(self) -> str:
        return f"BoundOnlyDecomposition(partition={self.partition})"


@dataclass(frozen=True)
class NonDisjointDecomposition(Decomposition):
    """``f(X) = F(φ(B), A, x_s)`` with one shared bound variable.

    Per Eq. (1) of the paper this is realised as two conditional
    disjoint decompositions over ``X \\ {x_s}``:
    ``f = x̄_s F0(φ0(𝔹), A) + x_s F1(φ1(𝔹), A)`` where ``𝔹 = B \\ {x_s}``.

    ``pattern0/types0`` describe the cofactor ``x_s = 0`` and
    ``pattern1/types1`` the cofactor ``x_s = 1``; each pattern vector is
    indexed by the reduced bound set ``𝔹`` (in sorted variable order)
    and each type vector by the free set ``A``.
    """

    partition: Partition
    shared: int
    pattern0: np.ndarray
    types0: np.ndarray
    pattern1: np.ndarray
    types1: np.ndarray
    mode: str = field(default="nd")

    def __post_init__(self) -> None:
        if self.shared not in self.partition.bound:
            raise ValueError(
                f"shared variable {self.shared} is not in the bound set "
                f"{self.partition.bound}"
            )
        reduced_cols = self.partition.n_cols // 2
        rows = self.partition.n_rows
        for name, vec, size in (
            ("pattern0", self.pattern0, reduced_cols),
            ("pattern1", self.pattern1, reduced_cols),
        ):
            vec = np.asarray(vec, dtype=np.uint8)
            if vec.shape != (size,):
                raise ValueError(f"{name} has shape {vec.shape}, expected ({size},)")
            object.__setattr__(self, name, vec)
        for name, vec in (("types0", self.types0), ("types1", self.types1)):
            vec = np.asarray(vec, dtype=np.int8)
            if vec.shape != (rows,):
                raise ValueError(f"{name} has shape {vec.shape}, expected ({rows},)")
            object.__setattr__(self, name, vec)

    # ------------------------------------------------------------------
    @property
    def reduced_bound(self) -> Tuple[int, ...]:
        """The bound set without the shared variable, ``𝔹``."""
        return tuple(v for v in self.partition.bound if v != self.shared)

    def halves(self) -> Tuple[DisjointDecomposition, DisjointDecomposition]:
        """The two conditional disjoint decompositions (on ``X \\ {x_s}``).

        The returned partitions are expressed in the *reduced* variable
        numbering where ``x_s`` has been deleted and higher variables
        shifted down by one — the numbering of
        :meth:`BooleanFunction.cofactor`.
        """

        def shift(v: int) -> int:
            return v - 1 if v > self.shared else v

        reduced = Partition(
            tuple(shift(v) for v in self.partition.free),
            tuple(shift(v) for v in self.reduced_bound),
        )
        return (
            DisjointDecomposition(reduced, self.pattern0, self.types0),
            DisjointDecomposition(reduced, self.pattern1, self.types1),
        )

    def evaluate(self, n_inputs: int) -> np.ndarray:
        self.partition.validate_for(n_inputs)
        xs = ops.all_inputs(n_inputs)
        rows = ops.extract_bits(xs, self.partition.free)
        cols = ops.extract_bits(xs, self.reduced_bound)
        sel = ops.bit_of(xs, self.shared)
        phi = np.where(sel, self.pattern1[cols], self.pattern0[cols])
        half0, half1 = self.halves()
        f0 = half0.free_table()[rows, phi.astype(np.int64)]
        f1 = half1.free_table()[rows, phi.astype(np.int64)]
        return np.where(sel, f1, f0).astype(np.uint8)

    # ------------------------------------------------------------------
    def bound_table(self) -> np.ndarray:
        """Merged bound table ``φ(B) = x̄_s φ0(𝔹) + x_s φ1(𝔹)``.

        Indexed by the full bound set ``B`` (sorted order), matching the
        single physical bound table of the BTO-Normal-ND architecture.
        """
        b = self.partition.n_bound
        cols = ops.all_inputs(b)
        positions = {v: i for i, v in enumerate(self.partition.bound)}
        shared_pos = positions[self.shared]
        reduced_pos = [positions[v] for v in self.reduced_bound]
        sel = ops.bit_of(cols, shared_pos)
        reduced_idx = ops.extract_bits(cols, reduced_pos)
        return np.where(
            sel, self.pattern1[reduced_idx], self.pattern0[reduced_idx]
        ).astype(np.uint8)

    def free_tables(self) -> Tuple[np.ndarray, np.ndarray]:
        """Contents of Free Table 0 and Free Table 1 (``F[row, φ]``)."""
        half0, half1 = self.halves()
        return half0.free_table(), half1.free_table()

    def lut_entries(self) -> int:
        """``2**b`` bound entries plus two free tables."""
        return self.partition.n_cols + 4 * self.partition.n_rows

    def __repr__(self) -> str:
        return (
            f"NonDisjointDecomposition(partition={self.partition}, "
            f"shared=x{self.shared + 1})"
        )


@dataclass(frozen=True)
class MultiSharedDecomposition(Decomposition):
    """Generalised non-disjoint decomposition with ``s`` shared bits.

    The paper limits the shared set ``C`` to a single variable "so that
    the hardware cost is not increased too much" (§IV-B1); this class
    implements the natural generalisation ``f(X) = F(φ(B), A, C)`` with
    ``C ⊆ B`` of any size: one conditional disjoint decomposition per
    assignment of ``C`` (``2**s`` pattern/type vector pairs), realised
    in hardware by ``2**s`` free tables behind a mux tree on ``C``.

    ``patterns[j]`` / ``types[j]`` describe the cofactor where the
    shared bits (in sorted variable order) spell the binary value
    ``j``.  The single-shared-bit case is exactly the paper's
    :class:`NonDisjointDecomposition`.
    """

    partition: Partition
    shared: Tuple[int, ...]
    patterns: Tuple[np.ndarray, ...]
    types: Tuple[np.ndarray, ...]
    mode: str = field(default="nd-multi")

    def __post_init__(self) -> None:
        shared = tuple(sorted(int(v) for v in self.shared))
        if not shared:
            raise ValueError("at least one shared variable is required")
        missing = set(shared) - set(self.partition.bound)
        if missing:
            raise ValueError(
                f"shared variables {sorted(missing)} are not in the bound set"
            )
        if len(shared) >= self.partition.n_bound:
            raise ValueError(
                "sharing every bound variable leaves no bound table; "
                "|C| must be < |B|"
            )
        object.__setattr__(self, "shared", shared)
        count = 1 << len(shared)
        reduced_cols = self.partition.n_cols >> len(shared)
        rows = self.partition.n_rows
        if len(self.patterns) != count or len(self.types) != count:
            raise ValueError(
                f"need {count} pattern/type vector pairs for "
                f"{len(shared)} shared bits"
            )
        patterns = []
        types = []
        for j in range(count):
            pattern = np.asarray(self.patterns[j], dtype=np.uint8)
            tvec = np.asarray(self.types[j], dtype=np.int8)
            if pattern.shape != (reduced_cols,):
                raise ValueError(
                    f"pattern {j} has shape {pattern.shape}, expected "
                    f"({reduced_cols},)"
                )
            if tvec.shape != (rows,):
                raise ValueError(
                    f"type vector {j} has shape {tvec.shape}, expected ({rows},)"
                )
            patterns.append(pattern)
            types.append(tvec)
        object.__setattr__(self, "patterns", tuple(patterns))
        object.__setattr__(self, "types", tuple(types))

    # ------------------------------------------------------------------
    @property
    def n_shared(self) -> int:
        return len(self.shared)

    @property
    def reduced_bound(self) -> Tuple[int, ...]:
        return tuple(v for v in self.partition.bound if v not in self.shared)

    def halves(self) -> Tuple[DisjointDecomposition, ...]:
        """The conditional disjoint decompositions, reduced numbering."""
        shared = set(self.shared)

        def shift(v: int) -> int:
            return v - sum(1 for s in self.shared if s < v)

        reduced = Partition(
            tuple(shift(v) for v in self.partition.free),
            tuple(shift(v) for v in self.reduced_bound),
        )
        return tuple(
            DisjointDecomposition(reduced, self.patterns[j], self.types[j])
            for j in range(1 << self.n_shared)
        )

    def evaluate(self, n_inputs: int) -> np.ndarray:
        self.partition.validate_for(n_inputs)
        xs = ops.all_inputs(n_inputs)
        rows = ops.extract_bits(xs, self.partition.free)
        cols = ops.extract_bits(xs, self.reduced_bound)
        select = ops.extract_bits(xs, self.shared)
        halves = self.halves()
        free_tables = np.stack([h.free_table() for h in halves])  # (2^s, rows, 2)
        pattern_bank = np.stack(self.patterns)  # (2^s, reduced_cols)
        phi = pattern_bank[select, cols]
        return free_tables[select, rows, phi.astype(np.int64)]

    def bound_table(self) -> np.ndarray:
        """Merged bound table over the full bound set (sorted order)."""
        b = self.partition.n_bound
        cols = ops.all_inputs(b)
        positions = {v: i for i, v in enumerate(self.partition.bound)}
        select = ops.extract_bits(cols, [positions[v] for v in self.shared])
        reduced_idx = ops.extract_bits(
            cols, [positions[v] for v in self.reduced_bound]
        )
        pattern_bank = np.stack(self.patterns)
        return pattern_bank[select, reduced_idx].astype(np.uint8)

    def free_tables(self) -> Tuple[np.ndarray, ...]:
        return tuple(h.free_table() for h in self.halves())

    def lut_entries(self) -> int:
        """Bound table plus ``2**s`` free tables."""
        return self.partition.n_cols + (1 << self.n_shared) * 2 * self.partition.n_rows

    def __repr__(self) -> str:
        shared = ",".join(f"x{v + 1}" for v in self.shared)
        return (
            f"MultiSharedDecomposition(partition={self.partition}, "
            f"shared={{{shared}}})"
        )


# ----------------------------------------------------------------------
# Exact (error-free) decomposition — Theorem 1
# ----------------------------------------------------------------------
def find_exact_decomposition(
    bits: np.ndarray, partition: Partition, n_inputs: int
) -> Optional[DisjointDecomposition]:
    """Ashenhurst's condition: classify each row as 0s/1s/V/~V.

    Returns an exact :class:`DisjointDecomposition` when one exists for
    this partition, else ``None``.  The pattern vector is taken from the
    first non-constant row (so constant functions decompose with an
    all-zero pattern).
    """
    matrix = to_matrix(np.asarray(bits, dtype=np.uint8), partition, n_inputs)
    row_sums = matrix.sum(axis=1)
    n_cols = matrix.shape[1]
    types = np.zeros(matrix.shape[0], dtype=np.int8)
    pattern: Optional[np.ndarray] = None
    for r in range(matrix.shape[0]):
        if row_sums[r] == 0:
            types[r] = RowType.ALL_ZERO
        elif row_sums[r] == n_cols:
            types[r] = RowType.ALL_ONE
        elif pattern is None:
            pattern = matrix[r].copy()
            types[r] = RowType.PATTERN
        elif np.array_equal(matrix[r], pattern):
            types[r] = RowType.PATTERN
        elif np.array_equal(matrix[r], 1 - pattern):
            types[r] = RowType.COMPLEMENT
        else:
            return None
    if pattern is None:
        pattern = np.zeros(n_cols, dtype=np.uint8)
    return DisjointDecomposition(partition, pattern, types)


def enumerate_exact_decompositions(
    function: BooleanFunction, k: int, bound_size: int
) -> Iterator[Tuple[Partition, DisjointDecomposition]]:
    """Yield every exact decomposition of output bit ``k``.

    Exhaustive over partitions — intended for small functions (tests,
    exploration tools).
    """
    bits = function.component(k)
    for partition in all_partitions(function.n_inputs, bound_size):
        found = find_exact_decomposition(bits, partition, function.n_inputs)
        if found is not None:
            yield partition, found
