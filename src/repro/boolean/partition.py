"""Variable partitions ``ω = (A, B)`` for disjoint decomposition.

A partition splits the ``n`` input variables into a *free set* ``A``
(indexing the rows of the 2D truth table) and a *bound set* ``B``
(indexing the columns).  The paper fixes ``|B| = b`` and explores the
partition space via *neighbour* moves that swap a single free variable
with a single bound variable (Section III-C: two partitions are
neighbours when their free sets differ in exactly one element).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from typing import Iterator, List, Tuple

import numpy as np

from . import ops
from ..caching import LruCache

__all__ = ["Partition", "random_partition", "all_partitions", "partition_count"]

#: cached neighbour lists keyed by partition — SA revisits the same
#: states across chains and rounds, and the swap enumeration allocates
#: n_free * n_bound Partition objects per call.  The list order is part
#: of the contract: ``sample_neighbours`` draws indices into it.
_NEIGHBOUR_CACHE = LruCache("partition_neighbours", maxsize=1024)


@dataclass(frozen=True)
class Partition:
    """A disjoint split of input variables into free and bound sets.

    Attributes
    ----------
    free:
        Sorted tuple of 0-indexed variable positions in the free set
        ``A`` (they index the rows of the 2D truth table).
    bound:
        Sorted tuple of 0-indexed variable positions in the bound set
        ``B`` (they index the columns and feed the bound table).
    """

    free: Tuple[int, ...]
    bound: Tuple[int, ...]

    def __post_init__(self) -> None:
        object.__setattr__(self, "free", tuple(sorted(int(v) for v in self.free)))
        object.__setattr__(self, "bound", tuple(sorted(int(v) for v in self.bound)))
        overlap = set(self.free) & set(self.bound)
        if overlap:
            raise ValueError(f"free and bound sets overlap on {sorted(overlap)}")
        if not self.bound:
            raise ValueError("bound set must not be empty")
        if not self.free:
            raise ValueError("free set must not be empty")

    @classmethod
    def _trusted(
        cls, free: Tuple[int, ...], bound: Tuple[int, ...]
    ) -> "Partition":
        """Construct from already-sorted, disjoint int tuples.

        Reserved for :meth:`neighbours`, which derives both tuples from
        a validated partition; skipping ``__post_init__`` matters there
        because SA expands ``n_free * n_bound`` neighbours per move.
        """
        self = object.__new__(cls)
        object.__setattr__(self, "free", free)
        object.__setattr__(self, "bound", bound)
        return self

    def __hash__(self) -> int:
        # partitions key every hot cache; hash the field tuples once
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.free, self.bound))
            object.__setattr__(self, "_hash", cached)
        return cached

    # ------------------------------------------------------------------
    @property
    def n_inputs(self) -> int:
        """Total number of variables covered by the partition."""
        return len(self.free) + len(self.bound)

    @property
    def n_free(self) -> int:
        return len(self.free)

    @property
    def n_bound(self) -> int:
        return len(self.bound)

    @property
    def n_rows(self) -> int:
        """Number of rows of the induced 2D truth table, ``2**|A|``."""
        return 1 << self.n_free

    @property
    def n_cols(self) -> int:
        """Number of columns of the induced 2D truth table, ``2**|B|``."""
        return 1 << self.n_bound

    def validate_for(self, n_inputs: int) -> None:
        """Check that the partition exactly covers ``n_inputs`` variables."""
        expected = set(range(n_inputs))
        actual = set(self.free) | set(self.bound)
        if actual != expected:
            raise ValueError(
                f"partition covers variables {sorted(actual)}, "
                f"expected exactly {sorted(expected)}"
            )

    # ------------------------------------------------------------------
    def row_col_of(self, words: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """Map input words to (row, column) coordinates of the 2D table."""
        return (
            ops.extract_bits(words, self.free),
            ops.extract_bits(words, self.bound),
        )

    def word_of(self, rows: np.ndarray, cols: np.ndarray) -> np.ndarray:
        """Inverse of :meth:`row_col_of`."""
        return ops.deposit_bits(rows, self.free) | ops.deposit_bits(cols, self.bound)

    def scatter_index(self, n_inputs: int) -> np.ndarray:
        """Permutation ``idx`` with ``matrix.flat[idx[x]] = value[x]``.

        ``idx[x] = row(x) * n_cols + col(x)`` — used to reshape any
        per-input vector into the partition's 2D truth-table layout.
        """
        self.validate_for(n_inputs)
        xs = ops.all_inputs(n_inputs)
        rows, cols = self.row_col_of(xs)
        return rows * self.n_cols + cols

    # ------------------------------------------------------------------
    def neighbours(self) -> List["Partition"]:
        """All partitions whose free set differs in exactly one element.

        Each neighbour swaps one free variable with one bound variable,
        preserving the bound-set size ``b`` required by the hardware.
        """
        cached = _NEIGHBOUR_CACHE.get(self)
        if cached is not None:
            return list(cached)
        result = []
        for a in self.free:
            for b in self.bound:
                free = tuple(sorted(set(self.free) - {a} | {b}))
                bound = tuple(sorted(set(self.bound) - {b} | {a}))
                result.append(Partition._trusted(free, bound))
        _NEIGHBOUR_CACHE.put(self, tuple(result))
        return result

    def sample_neighbours(
        self, count: int, rng: np.random.Generator
    ) -> List["Partition"]:
        """Sample ``count`` distinct neighbours uniformly (``GenNeib``).

        Neighbour ``i`` of :meth:`neighbours` swaps the ``i``-th entry
        of the (free x bound) product; drawing indices into that
        product takes the same generator draw — and yields the same
        partitions — as enumerating every swap, while only
        constructing the ``count`` chosen neighbours.
        """
        n_bound = len(self.bound)
        total = len(self.free) * n_bound
        if count >= total:
            return self.neighbours()
        picks = rng.choice(total, size=count, replace=False)
        result = []
        for pick in picks:
            a = self.free[int(pick) // n_bound]
            b = self.bound[int(pick) % n_bound]
            result.append(
                Partition._trusted(
                    tuple(sorted(set(self.free) - {a} | {b})),
                    tuple(sorted(set(self.bound) - {b} | {a})),
                )
            )
        return result

    def is_neighbour_of(self, other: "Partition") -> bool:
        """True when the free sets differ in exactly one element."""
        if self.n_free != other.n_free or self.n_bound != other.n_bound:
            return False
        return len(set(self.free) - set(other.free)) == 1

    def with_shared_first(self, shared: int) -> "Partition":
        """Check ``shared`` is a bound variable and return self.

        Used by the non-disjoint mode: the routing box can always place
        the shared bit at the last bound position, so the logical
        partition does not change; this helper just validates membership.
        """
        if shared not in self.bound:
            raise ValueError(f"shared variable {shared} is not in the bound set")
        return self

    def __str__(self) -> str:
        free = ",".join(f"x{v + 1}" for v in self.free)
        bound = ",".join(f"x{v + 1}" for v in self.bound)
        return f"A={{{free}}} B={{{bound}}}"


def random_partition(
    n_inputs: int, bound_size: int, rng: np.random.Generator
) -> Partition:
    """Draw a uniform random partition with ``|B| = bound_size``."""
    if not 1 <= bound_size < n_inputs:
        raise ValueError(
            f"bound_size must be in [1, {n_inputs - 1}], got {bound_size}"
        )
    variables = rng.permutation(n_inputs)
    bound = tuple(int(v) for v in variables[:bound_size])
    free = tuple(int(v) for v in variables[bound_size:])
    return Partition(free, bound)


def all_partitions(n_inputs: int, bound_size: int) -> Iterator[Partition]:
    """Enumerate every partition with the given bound-set size.

    Only practical for small ``n``; used by tests and exhaustive
    baselines.
    """
    variables = range(n_inputs)
    for bound in itertools.combinations(variables, bound_size):
        free = tuple(v for v in variables if v not in bound)
        yield Partition(free, bound)


def partition_count(n_inputs: int, bound_size: int) -> int:
    """Number of partitions with ``|B| = bound_size`` (``C(n, b)``)."""
    return math.comb(n_inputs, bound_size)
