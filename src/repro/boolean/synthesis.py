"""Turning decompositions into human-readable logic and LUT images.

The paper's examples present ``φ`` and ``F`` as sum-of-products
expressions (e.g. Example 1: ``φ(x3, x4) = x̄3·x4 + x3·x̄4``).  This
module reproduces that view and also renders raw LUT images in the
formats consumed by the Verilog emitter (`$readmemh`/`$readmemb`).
"""

from __future__ import annotations

from typing import List, Sequence

import numpy as np

from .decomposition import (
    DisjointDecomposition,
    MultiSharedDecomposition,
    NonDisjointDecomposition,
)

__all__ = [
    "sop_expression",
    "phi_expression",
    "free_expression",
    "lut_image_bits",
    "lut_image_hex",
    "describe_decomposition",
]

_NOT_MARK = "~"


def _literal(variable_name: str, value: int) -> str:
    """One literal of a minterm: ``x3`` or ``~x3``."""
    return variable_name if value else _NOT_MARK + variable_name


def sop_expression(
    bits: np.ndarray, variable_names: Sequence[str], true_name: str = "1"
) -> str:
    """Canonical sum-of-minterms for a small single-output function.

    ``bits[i]`` is the output for the input word ``i`` whose bit ``j``
    drives ``variable_names[j]``.  Constant functions render as ``0`` or
    ``1``.
    """
    bits = np.asarray(bits, dtype=np.uint8)
    n = len(variable_names)
    if bits.shape != (1 << n,):
        raise ValueError(
            f"bits has shape {bits.shape}, expected ({1 << n},) "
            f"for {n} variables"
        )
    ones = np.flatnonzero(bits)
    if len(ones) == 0:
        return "0"
    if len(ones) == len(bits):
        return true_name
    terms: List[str] = []
    for word in ones:
        literals = [
            _literal(variable_names[j], (int(word) >> j) & 1) for j in range(n)
        ]
        terms.append("·".join(literals))
    return " + ".join(terms)


def phi_expression(decomposition: DisjointDecomposition) -> str:
    """SOP of the bound-table function ``φ(B)`` in paper variable names."""
    names = [f"x{v + 1}" for v in decomposition.partition.bound]
    return sop_expression(decomposition.bound_table(), names)


def free_expression(decomposition: DisjointDecomposition) -> str:
    """SOP of ``F(φ, A)``: φ is treated as an extra (first) variable."""
    names = ["φ"] + [f"x{v + 1}" for v in decomposition.partition.free]
    # free_table is F[row, φ]; flatten with φ as bit 0 of the index
    table = decomposition.free_table()
    rows = decomposition.partition.n_rows
    bits = np.empty(2 * rows, dtype=np.uint8)
    idx = np.arange(2 * rows)
    bits[idx] = table[idx >> 1, idx & 1]
    return sop_expression(bits, names)


def lut_image_bits(contents: np.ndarray) -> str:
    """Render LUT contents as one binary digit per line (``$readmemb``)."""
    return "\n".join(str(int(v)) for v in np.asarray(contents).reshape(-1))


def lut_image_hex(words: np.ndarray, width: int) -> str:
    """Render multi-bit LUT words as hex lines (``$readmemh``)."""
    digits = (width + 3) // 4
    return "\n".join(format(int(w), f"0{digits}x") for w in np.asarray(words))


def describe_decomposition(decomposition) -> str:
    """Multi-line human-readable description of any decomposition."""
    lines: List[str] = []
    if isinstance(decomposition, MultiSharedDecomposition):
        part = decomposition.partition
        shared = ", ".join(f"x{v + 1}" for v in decomposition.shared)
        lines.append(
            f"multi-shared decomposition ({decomposition.n_shared} shared "
            f"bits: {shared})"
        )
        lines.append(f"  partition: {part}")
        for j, half in enumerate(decomposition.halves()):
            lines.append(f"  φ{j} = {phi_expression(half)}")
        lines.append(f"  LUT entries: {decomposition.lut_entries()}")
    elif isinstance(decomposition, NonDisjointDecomposition):
        part = decomposition.partition
        lines.append(
            f"non-disjoint decomposition, shared bit x{decomposition.shared + 1}"
        )
        lines.append(f"  partition: {part}")
        half0, half1 = decomposition.halves()
        lines.append(f"  φ0 = {phi_expression(half0)}")
        lines.append(f"  φ1 = {phi_expression(half1)}")
        lines.append(f"  F0 = {free_expression(half0)}")
        lines.append(f"  F1 = {free_expression(half1)}")
        lines.append(f"  LUT entries: {decomposition.lut_entries()}")
    elif isinstance(decomposition, DisjointDecomposition):
        kind = "bound-table-only" if not decomposition.uses_free_table else "disjoint"
        lines.append(f"{kind} decomposition")
        lines.append(f"  partition: {decomposition.partition}")
        lines.append(f"  V = {''.join(map(str, decomposition.pattern))}")
        lines.append(
            "  T = (" + ", ".join(str(int(t)) for t in decomposition.types) + ")"
        )
        lines.append(f"  φ = {phi_expression(decomposition)}")
        if decomposition.uses_free_table:
            lines.append(f"  F = {free_expression(decomposition)}")
        lines.append(f"  LUT entries: {decomposition.lut_entries()}")
    else:
        raise TypeError(f"unsupported decomposition type {type(decomposition)!r}")
    return "\n".join(lines)
