"""Dense multi-output Boolean function representation.

A :class:`BooleanFunction` stores the complete truth table of an
``n``-input, ``m``-output function ``Y = G(X)`` as a numpy vector of
``2**n`` output words, exactly the object the paper's algorithms operate
on.  Input words are interpreted per the package convention: bit ``i``
of the word is the paper's :math:`x_{i+1}`.
"""

from __future__ import annotations

from typing import Callable, Sequence, Tuple

import numpy as np

from . import ops

__all__ = ["BooleanFunction"]


class BooleanFunction:
    """An ``n``-input, ``m``-output Boolean function as a dense table.

    Parameters
    ----------
    n_inputs:
        Number of input bits ``n``.
    n_outputs:
        Number of output bits ``m``.
    table:
        Integer array of shape ``(2**n,)``; entry ``x`` is the output
        word ``Bin(G(x))``.
    name:
        Optional human-readable name used in reports.
    """

    def __init__(
        self,
        n_inputs: int,
        n_outputs: int,
        table: np.ndarray,
        name: str = "",
    ) -> None:
        table = np.asarray(table, dtype=np.int64)
        if table.shape != (1 << n_inputs,):
            raise ValueError(
                f"table has shape {table.shape}, expected ({1 << n_inputs},) "
                f"for n_inputs={n_inputs}"
            )
        if n_outputs < 1:
            raise ValueError(f"n_outputs must be >= 1, got {n_outputs}")
        limit = np.int64(1) << n_outputs
        if table.min(initial=0) < 0 or table.max(initial=0) >= limit:
            raise ValueError(
                f"table values must lie in [0, 2**{n_outputs}); "
                f"found range [{table.min()}, {table.max()}]"
            )
        self.n_inputs = int(n_inputs)
        self.n_outputs = int(n_outputs)
        self.table = table
        self.name = name or f"func_{n_inputs}x{n_outputs}"

    # ------------------------------------------------------------------
    # Constructors
    # ------------------------------------------------------------------
    @classmethod
    def from_callable(
        cls,
        func: Callable[[int], int],
        n_inputs: int,
        n_outputs: int,
        name: str = "",
    ) -> "BooleanFunction":
        """Tabulate ``func`` over all ``2**n`` input words."""
        xs = ops.all_inputs(n_inputs)
        table = np.fromiter((int(func(int(x))) for x in xs), dtype=np.int64, count=len(xs))
        return cls(n_inputs, n_outputs, table, name=name)

    @classmethod
    def from_vectorized(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        n_inputs: int,
        n_outputs: int,
        name: str = "",
    ) -> "BooleanFunction":
        """Tabulate a numpy-vectorised callable over all input words."""
        table = np.asarray(func(ops.all_inputs(n_inputs)), dtype=np.int64)
        return cls(n_inputs, n_outputs, table, name=name)

    @classmethod
    def from_real_function(
        cls,
        func: Callable[[np.ndarray], np.ndarray],
        domain: Tuple[float, float],
        value_range: Tuple[float, float],
        n_inputs: int,
        n_outputs: int,
        name: str = "",
    ) -> "BooleanFunction":
        """Quantise a real-valued 1-D function into a Boolean function.

        This follows the benchmark construction of the paper (and of
        ApproxLUT): the input domain is sampled at ``2**n`` evenly
        spaced points and the output is linearly quantised onto
        ``2**m`` levels spanning ``value_range``.  Outputs are clipped
        into range so that functions whose analytic extremes slightly
        exceed the declared range still quantise safely.
        """
        lo, hi = domain
        vlo, vhi = value_range
        if hi <= lo:
            raise ValueError(f"empty domain [{lo}, {hi}]")
        if vhi <= vlo:
            raise ValueError(f"empty value range [{vlo}, {vhi}]")
        xs = ops.all_inputs(n_inputs).astype(np.float64)
        points = lo + xs * (hi - lo) / float((1 << n_inputs) - 1)
        values = np.asarray(func(points), dtype=np.float64)
        levels = (1 << n_outputs) - 1
        scaled = np.rint((values - vlo) / (vhi - vlo) * levels)
        table = np.clip(scaled, 0, levels).astype(np.int64)
        return cls(n_inputs, n_outputs, table, name=name)

    @classmethod
    def from_component_bits(
        cls, bits: Sequence[np.ndarray], name: str = ""
    ) -> "BooleanFunction":
        """Assemble a function from per-output-bit tables (LSB first)."""
        if not bits:
            raise ValueError("at least one component bit is required")
        size = len(bits[0])
        n_inputs = int(size).bit_length() - 1
        if 1 << n_inputs != size:
            raise ValueError(f"component length {size} is not a power of two")
        table = np.zeros(size, dtype=np.int64)
        for k, component in enumerate(bits):
            component = np.asarray(component, dtype=np.int64)
            if component.shape != (size,):
                raise ValueError("all component bit tables must have equal length")
            if np.any((component != 0) & (component != 1)):
                raise ValueError(f"component {k} contains non-binary values")
            table |= component << k
        return cls(n_inputs, len(bits), table, name=name)

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def size(self) -> int:
        """Number of truth-table entries, ``2**n``."""
        return 1 << self.n_inputs

    def component(self, k: int) -> np.ndarray:
        """Truth table of output bit ``k`` (0-indexed LSB) as 0/1 uint8."""
        self._check_output_bit(k)
        return ops.bit_of(self.table, k)

    def components(self) -> np.ndarray:
        """All component bits as a ``(2**n, m)`` matrix (column 0 = LSB)."""
        return ops.words_to_bits(self.table, self.n_outputs)

    def with_component(self, k: int, bits: np.ndarray) -> "BooleanFunction":
        """Return a copy with output bit ``k`` replaced by ``bits``."""
        self._check_output_bit(k)
        bits = np.asarray(bits, dtype=np.int64)
        if np.any((bits != 0) & (bits != 1)):
            raise ValueError("replacement bits must be 0/1")
        table = ops.set_bit(self.table, k, bits)
        return BooleanFunction(self.n_inputs, self.n_outputs, table, name=self.name)

    def evaluate(self, x) -> np.ndarray:
        """Look up output words for scalar or array inputs."""
        return self.table[np.asarray(x, dtype=np.int64)]

    def __call__(self, x):
        result = self.evaluate(x)
        if np.isscalar(x) or np.ndim(x) == 0:
            return int(result)
        return result

    def cofactor(self, variable: int, value: int) -> "BooleanFunction":
        """Restrict input bit ``variable`` to ``value`` (Shannon cofactor).

        The returned function has ``n - 1`` inputs; the remaining
        variables keep their relative order and are re-indexed densely.
        """
        if not 0 <= variable < self.n_inputs:
            raise ValueError(f"variable {variable} out of range")
        if value not in (0, 1):
            raise ValueError(f"value must be 0 or 1, got {value}")
        keep = [i for i in range(self.n_inputs) if i != variable]
        reduced = ops.all_inputs(self.n_inputs - 1)
        full = ops.deposit_bits(reduced, keep) | (value << variable)
        return BooleanFunction(
            self.n_inputs - 1,
            self.n_outputs,
            self.table[full],
            name=f"{self.name}|x{variable + 1}={value}",
        )

    def permute_inputs(self, order: Sequence[int]) -> "BooleanFunction":
        """Apply an input permutation (``order[i]`` feeds new bit ``i``)."""
        order = ops.validate_positions(order, self.n_inputs)
        if len(order) != self.n_inputs:
            raise ValueError("permutation must cover every input bit")
        xs = ops.all_inputs(self.n_inputs)
        # new input word x addresses the original entry whose bit order[i]
        # equals bit i of x
        source = ops.deposit_bits(xs, order)
        return BooleanFunction(
            self.n_inputs, self.n_outputs, self.table[source], name=self.name
        )

    # ------------------------------------------------------------------
    # Comparisons / dunder support
    # ------------------------------------------------------------------
    def equals(self, other: "BooleanFunction") -> bool:
        """True when both functions have identical shape and tables."""
        return (
            self.n_inputs == other.n_inputs
            and self.n_outputs == other.n_outputs
            and bool(np.array_equal(self.table, other.table))
        )

    def hamming_distance(self, other: "BooleanFunction") -> int:
        """Number of truth-table entries on which the functions differ."""
        self._check_compatible(other)
        return int(np.count_nonzero(self.table != other.table))

    def _check_compatible(self, other: "BooleanFunction") -> None:
        if self.n_inputs != other.n_inputs or self.n_outputs != other.n_outputs:
            raise ValueError(
                f"incompatible functions: {self.n_inputs}x{self.n_outputs} vs "
                f"{other.n_inputs}x{other.n_outputs}"
            )

    def _check_output_bit(self, k: int) -> None:
        if not 0 <= k < self.n_outputs:
            raise ValueError(
                f"output bit {k} out of range for {self.n_outputs} outputs"
            )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, BooleanFunction):
            return NotImplemented
        return self.equals(other)

    def __hash__(self) -> int:  # pragma: no cover - identity hashing
        return id(self)

    def __repr__(self) -> str:
        return (
            f"BooleanFunction(name={self.name!r}, n_inputs={self.n_inputs}, "
            f"n_outputs={self.n_outputs})"
        )
