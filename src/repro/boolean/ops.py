"""Low-level bit-manipulation utilities shared across the package.

All functions in this module operate on numpy integer arrays that encode
Boolean input/output words.  Bit ``i`` (0-indexed, weight ``2**i``) of a
word corresponds to the paper's variable :math:`x_{i+1}` / output bit
:math:`y_{i+1}`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "all_inputs",
    "bit_of",
    "bits_to_words",
    "extract_bits",
    "deposit_bits",
    "parity",
    "popcount",
    "set_bit",
    "words_to_bits",
]


def all_inputs(n_inputs: int) -> np.ndarray:
    """Return the array ``[0, 1, ..., 2**n_inputs - 1]`` of input words.

    The dtype is ``int64`` so that downstream arithmetic (error
    distances, weighted sums) does not overflow for any supported input
    width.
    """
    if n_inputs < 0:
        raise ValueError(f"n_inputs must be non-negative, got {n_inputs}")
    if n_inputs > 26:
        raise ValueError(
            f"n_inputs={n_inputs} would allocate 2**{n_inputs} entries; "
            "widths above 26 are not supported by the dense representation"
        )
    return np.arange(1 << n_inputs, dtype=np.int64)


def bit_of(words: np.ndarray, position: int) -> np.ndarray:
    """Extract bit ``position`` of every word as a ``uint8`` 0/1 array."""
    return ((np.asarray(words) >> position) & 1).astype(np.uint8)


def set_bit(words: np.ndarray, position: int, values: np.ndarray) -> np.ndarray:
    """Return a copy of ``words`` with bit ``position`` replaced by ``values``.

    ``values`` must broadcast against ``words`` and contain only 0/1.
    """
    words = np.asarray(words, dtype=np.int64)
    values = np.asarray(values, dtype=np.int64)
    mask = ~np.int64(1 << position)
    return (words & mask) | (values << position)


def extract_bits(words: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Gather the listed bit positions of each word into a packed index.

    ``positions[i]`` supplies bit ``i`` of the result, i.e. the first
    listed position becomes the least significant bit of the packed
    value.  This is the software analogue of the x86 ``pext``
    instruction and is how a full input word is split into the row/column
    coordinates of a 2D truth table.
    """
    words = np.asarray(words, dtype=np.int64)
    out = np.zeros_like(words)
    for i, pos in enumerate(positions):
        out |= ((words >> pos) & 1) << i
    return out


def deposit_bits(packed: np.ndarray, positions: Sequence[int]) -> np.ndarray:
    """Inverse of :func:`extract_bits`: scatter packed bits to positions.

    Bit ``i`` of ``packed`` is placed at bit ``positions[i]`` of the
    result; all other bits are zero.
    """
    packed = np.asarray(packed, dtype=np.int64)
    out = np.zeros_like(packed)
    for i, pos in enumerate(positions):
        out |= ((packed >> i) & 1) << pos
    return out


def words_to_bits(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Unpack words into a ``(len(words), n_bits)`` 0/1 matrix (LSB first)."""
    words = np.asarray(words, dtype=np.int64)
    shifts = np.arange(n_bits, dtype=np.int64)
    return ((words[:, None] >> shifts[None, :]) & 1).astype(np.uint8)


def bits_to_words(bits: np.ndarray) -> np.ndarray:
    """Pack a ``(rows, n_bits)`` 0/1 matrix into words (column 0 = LSB)."""
    bits = np.asarray(bits, dtype=np.int64)
    weights = np.int64(1) << np.arange(bits.shape[1], dtype=np.int64)
    return bits @ weights


def popcount(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Count set bits of each word (up to ``n_bits`` positions)."""
    return words_to_bits(words, n_bits).sum(axis=1).astype(np.int64)


def parity(words: np.ndarray, n_bits: int) -> np.ndarray:
    """Return the XOR of the low ``n_bits`` bits of each word."""
    return (popcount(words, n_bits) & 1).astype(np.uint8)


def validate_positions(positions: Iterable[int], n_inputs: int) -> tuple:
    """Validate a collection of distinct bit positions within range.

    Returns the positions as a tuple (in the given order).  Raises
    ``ValueError`` on duplicates or out-of-range entries.
    """
    pos = tuple(int(p) for p in positions)
    if len(set(pos)) != len(pos):
        raise ValueError(f"duplicate bit positions in {pos}")
    for p in pos:
        if not 0 <= p < n_inputs:
            raise ValueError(f"bit position {p} out of range for {n_inputs} inputs")
    return pos
