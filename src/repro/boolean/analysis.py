"""Decomposability analysis tools.

Ashenhurst's condition (Theorem 1) is rarely met exactly, but *how far*
a function is from meeting it predicts how well the approximate
decomposition will do.  The natural metric is the 2D truth table's
**column multiplicity** (number of distinct rows): a single-output
``φ`` decomposition exists iff the distinct rows fit into
``{0, 1, V, ~V}``; more distinct rows mean more cells must be flipped.

These helpers quantify that per output bit and per partition — they
explain, for example, why the Brent-Kung adder reaches near-zero MEDs
in Table II while the stitched multiplier cannot.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from .decomposition import find_exact_decomposition
from .function import BooleanFunction
from .partition import Partition, partition_count, random_partition
from .truth_table import to_matrix

__all__ = [
    "column_multiplicity",
    "minimum_flip_distance",
    "PartitionProfile",
    "profile_output_bit",
    "decomposability_report",
]


def column_multiplicity(
    bits: np.ndarray, partition: Partition, n_inputs: int
) -> int:
    """Number of distinct rows of the 2D truth table."""
    matrix = to_matrix(np.asarray(bits, dtype=np.uint8), partition, n_inputs)
    return len(np.unique(matrix, axis=0))


def minimum_flip_distance(
    bits: np.ndarray, partition: Partition, n_inputs: int
) -> int:
    """Fewest truth-table cells to flip until Theorem 1 holds.

    Computed exactly by the same per-row/per-column reasoning as
    ``OptForPart`` with unit costs: choose the pattern vector ``V`` and
    per-row types minimising the Hamming distance to the original
    table.  (This equals the unweighted OptForPart optimum for a
    single-output function, found by trying every distinct row as the
    pattern candidate — optimal whenever some original row pattern is
    an optimal ``V``, which gives a tight upper bound in general.)
    """
    matrix = to_matrix(np.asarray(bits, dtype=np.uint8), partition, n_inputs)
    rows, cols = matrix.shape
    distinct = np.unique(matrix, axis=0)
    row_ones = matrix.sum(axis=1)
    best = np.inf
    for candidate in distinct:
        # cost per row for types 1-4 under pattern = candidate
        zeros_cost = row_ones
        ones_cost = cols - row_ones
        pattern_cost = (matrix != candidate[None, :]).sum(axis=1)
        complement_cost = cols - pattern_cost
        per_row = np.minimum.reduce(
            [zeros_cost, ones_cost, pattern_cost, complement_cost]
        )
        best = min(best, int(per_row.sum()))
    return int(best)


@dataclass
class PartitionProfile:
    """Decomposability statistics of one output bit over partitions."""

    output_bit: int
    n_partitions: int
    exactly_decomposable: int
    best_flip_distance: int
    best_partition: Optional[Partition]
    multiplicity_histogram: Dict[int, int]

    @property
    def exact_fraction(self) -> float:
        if self.n_partitions == 0:
            return 0.0
        return self.exactly_decomposable / self.n_partitions

    def render(self) -> str:
        histogram = ", ".join(
            f"{m}:{c}" for m, c in sorted(self.multiplicity_histogram.items())
        )
        return (
            f"bit y{self.output_bit + 1}: "
            f"{self.exactly_decomposable}/{self.n_partitions} partitions exact, "
            f"best flip distance {self.best_flip_distance} "
            f"(multiplicities {histogram})"
        )


def profile_output_bit(
    function: BooleanFunction,
    k: int,
    bound_size: int,
    max_partitions: int = 50,
    rng: Optional[np.random.Generator] = None,
) -> PartitionProfile:
    """Sample partitions and profile output bit ``k``'s decomposability."""
    if rng is None:
        rng = np.random.default_rng(0)
    bits = function.component(k)
    n = function.n_inputs
    total = partition_count(n, bound_size)
    partitions: List[Partition]
    if total <= max_partitions:
        from .partition import all_partitions

        partitions = list(all_partitions(n, bound_size))
    else:
        seen = set()
        attempts = 0
        while len(seen) < max_partitions and attempts < 50 * max_partitions:
            attempts += 1
            seen.add(random_partition(n, bound_size, rng))
        partitions = list(seen)

    exact = 0
    best_distance = np.inf
    best_partition = None
    histogram: Dict[int, int] = {}
    for partition in partitions:
        multiplicity = column_multiplicity(bits, partition, n)
        histogram[multiplicity] = histogram.get(multiplicity, 0) + 1
        if find_exact_decomposition(bits, partition, n) is not None:
            exact += 1
            distance = 0
        else:
            distance = minimum_flip_distance(bits, partition, n)
        if distance < best_distance:
            best_distance = distance
            best_partition = partition
    return PartitionProfile(
        output_bit=k,
        n_partitions=len(partitions),
        exactly_decomposable=exact,
        best_flip_distance=int(best_distance),
        best_partition=best_partition,
        multiplicity_histogram=histogram,
    )


def decomposability_report(
    function: BooleanFunction,
    bound_size: int,
    max_partitions: int = 50,
    rng: Optional[np.random.Generator] = None,
) -> str:
    """Per-output-bit decomposability summary of a whole function."""
    lines = [
        f"decomposability of {function.name} "
        f"({function.n_inputs}-in/{function.n_outputs}-out, b={bound_size}):"
    ]
    for k in range(function.n_outputs):
        profile = profile_output_bit(
            function, k, bound_size, max_partitions=max_partitions, rng=rng
        )
        lines.append("  " + profile.render())
    return "\n".join(lines)
