"""One-shot compilation as a library call: the ``repro compile`` body.

Both the CLI subcommand and the serve daemon (:mod:`repro.serve`) go
through :func:`compile_one` / :func:`artifact_from_result`, so a
served response is byte-identical to an offline compile by
construction — there is exactly one code path that turns a request
into an artifact.

The contract that makes this work: :meth:`RunSpec.execute` with
``direct_seed == config.seed`` drives ``run_bssa`` / ``run_dalta``
with ``np.random.default_rng(config.seed)`` — precisely the generator
:func:`repro.approximate` builds when no explicit ``rng`` is passed —
so wrapping a compilation in a :class:`RunSpec` (the picklable form
the warm pool executes) changes nothing about the search.

An artifact is a plain JSON-able dict.  Everything inside it is
deterministic (settings, MED, Verilog text, error metrics); wall-clock
timing lives *outside* the artifact, in :class:`CompileArtifact`'s
``elapsed_seconds``, so artifacts can be byte-compared across cache
layers, backends, and daemon restarts.
"""

from __future__ import annotations

import dataclasses
import json
import time
from typing import Any, Dict, Optional, Sequence

import numpy as np

from . import workloads
from .boolean.function import BooleanFunction
from .core import serialize
from .core.compiler import ALGORITHMS, ARCHITECTURES, ApproxLUT
from .core.config import AlgorithmConfig
from .core.result import ApproximationResult
from .experiments.parallel import RunSpec
from .metrics import distributions

__all__ = [
    "ARTIFACT_SCHEMA",
    "BUDGETS",
    "CompileArtifact",
    "artifact_from_result",
    "build_run_spec",
    "build_target",
    "budget_config",
    "canonical_json",
    "compile_one",
    "requested_architecture",
]

#: version stamp inside every compiled artifact payload
ARTIFACT_SCHEMA = 1

#: named search budgets exposed by ``repro compile --budget`` and the
#: daemon's ``"budget"`` request knob
BUDGETS = {
    "fast": AlgorithmConfig.fast,
    "reduced": AlgorithmConfig.reduced,
    "paper": AlgorithmConfig.paper_bssa,
}

#: largest raw truth table accepted (2**16 rows = a 16-bit function)
MAX_TABLE_BITS = 16


def budget_config(budget: str, seed: Optional[int] = 0) -> AlgorithmConfig:
    """Resolve a named budget to a seeded :class:`AlgorithmConfig`."""
    try:
        factory = BUDGETS[budget]
    except KeyError:
        raise ValueError(
            f"unknown budget {budget!r}; choose from {sorted(BUDGETS)}"
        )
    config = factory()
    if seed is not None:
        config = config.with_seed(seed)
    return config


def build_target(
    benchmark: Optional[str] = None,
    bits: int = 10,
    table: Optional[Sequence[int]] = None,
    n_outputs: Optional[int] = None,
    name: Optional[str] = None,
) -> BooleanFunction:
    """Materialise the compilation target.

    Exactly one of ``benchmark`` (a registered workload name, built at
    ``bits`` inputs) or ``table`` (a raw truth table of ``2**n``
    output words, requiring ``n_outputs``) must be given.
    """
    if (benchmark is None) == (table is None):
        raise ValueError("give exactly one of benchmark= or table=")
    if table is not None:
        if n_outputs is None:
            raise ValueError("a raw table needs n_outputs=")
        rows = len(table)
        n_inputs = max(rows - 1, 0).bit_length()
        if rows < 2 or rows != (1 << n_inputs):
            raise ValueError(
                f"table length must be a power of two >= 2, got {rows}"
            )
        if n_inputs > MAX_TABLE_BITS:
            raise ValueError(
                f"table too large: {n_inputs} input bits "
                f"(limit {MAX_TABLE_BITS})"
            )
        return BooleanFunction(
            n_inputs, int(n_outputs), np.asarray(table), name=name or ""
        )
    return workloads.get(benchmark, n_inputs=bits)


def build_run_spec(
    target: BooleanFunction,
    architecture: str = "bto-normal-nd",
    algorithm: str = "bs-sa",
    config: Optional[AlgorithmConfig] = None,
) -> RunSpec:
    """Wrap one compilation in the picklable :class:`RunSpec` form.

    The hardware ``architecture`` maps onto the search architecture the
    same way :func:`repro.approximate` maps it (``"dalta"`` hardware
    searches in plain ``"normal"`` mode); ``direct_seed`` is pinned to
    ``config.seed`` so :meth:`RunSpec.execute` draws the identical
    generator.  The mapping is bijective over ``ARCHITECTURES``, so
    ``spec.fingerprint()`` uniquely keys the finished artifact.
    """
    if architecture not in ARCHITECTURES:
        raise ValueError(
            f"unknown architecture {architecture!r}; "
            f"choose from {ARCHITECTURES}"
        )
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; choose from {ALGORITHMS}"
        )
    if config is None:
        config = budget_config("reduced")
    search_arch = "normal" if architecture == "dalta" else architecture
    return RunSpec.for_function(
        algorithm,
        target,
        config,
        base_seed=None,
        spawn_index=0,
        architecture=search_arch,
        direct_seed=config.seed,
    )


def requested_architecture(spec: RunSpec) -> str:
    """Invert the search-architecture mapping of :func:`build_run_spec`."""
    return "dalta" if spec.architecture == "normal" else spec.architecture


def _jsonable(value: Any) -> Any:
    """Recursively coerce numpy scalars so ``json.dumps`` round-trips."""
    if isinstance(value, dict):
        return {key: _jsonable(item) for key, item in value.items()}
    if isinstance(value, (list, tuple)):
        return [_jsonable(item) for item in value]
    if isinstance(value, np.integer):
        return int(value)
    if isinstance(value, np.floating):
        return float(value)
    return value


def canonical_json(payload: Dict[str, Any]) -> str:
    """The byte form artifacts are compared in, everywhere."""
    return json.dumps(payload, sort_keys=True)


@dataclasses.dataclass
class CompileArtifact:
    """A finished compilation: deterministic payload + timing sidecar.

    ``payload`` is the JSON document served by the daemon and stored
    in the artifact cache; it contains nothing non-deterministic.
    ``lut`` keeps the in-process :class:`ApproxLUT` for callers (the
    CLI) that want the hardware report or ``serialize.save``.
    """

    payload: Dict[str, Any]
    lut: ApproxLUT
    spec: RunSpec
    elapsed_seconds: float = 0.0

    @property
    def fingerprint(self) -> str:
        return self.payload["fingerprint"]

    @property
    def med(self) -> float:
        return self.payload["med"]

    def canonical(self) -> str:
        return canonical_json(self.payload)


def artifact_from_result(
    spec: RunSpec,
    result: ApproximationResult,
    elapsed_seconds: float = 0.0,
) -> CompileArtifact:
    """Build the served artifact from a finished search result.

    ``result`` may come from an in-process :meth:`RunSpec.execute` or
    from a pool worker's checkpoint payload round-tripped through
    :func:`repro.experiments.engine.result_from_payload` — both carry
    the exact same settings and floats, so the artifact is identical
    either way.  Search timing/statistics are deliberately excluded:
    the payload must be byte-stable across backends and cache layers.
    """
    architecture = requested_architecture(spec)
    target = spec.target_function()
    p = distributions.uniform(target.n_inputs)
    lut = ApproxLUT(target, result, architecture, p)
    payload = _jsonable(
        {
            "schema": ARTIFACT_SCHEMA,
            "fingerprint": spec.fingerprint(),
            "target": {
                "name": target.name,
                "n_inputs": target.n_inputs,
                "n_outputs": target.n_outputs,
            },
            "architecture": architecture,
            "algorithm": spec.algorithm,
            "seed": spec.seed_info(),
            "med": lut.med,
            "mode_counts": lut.mode_counts(),
            "lut_bits": lut.lut_entries(),
            "error": lut.error_report().as_dict(),
            "hardware": {"report": lut.hardware().report()},
            "config": json.loads(serialize.dumps(lut)),
            "verilog": lut.to_verilog(),
        }
    )
    return CompileArtifact(
        payload=payload, lut=lut, spec=spec, elapsed_seconds=elapsed_seconds
    )


def compile_one(
    benchmark: Optional[str] = None,
    *,
    bits: int = 10,
    table: Optional[Sequence[int]] = None,
    n_outputs: Optional[int] = None,
    name: Optional[str] = None,
    architecture: str = "bto-normal-nd",
    algorithm: str = "bs-sa",
    budget: str = "reduced",
    seed: Optional[int] = 0,
    config: Optional[AlgorithmConfig] = None,
) -> CompileArtifact:
    """Compile one target in-process and return its artifact.

    This is the ``repro compile`` body as a library call; the serve
    daemon's inline backend calls it per request and its pool backend
    executes the same :class:`RunSpec` in a worker — all three produce
    byte-identical payloads.
    """
    if config is None:
        config = budget_config(budget, seed)
    elif seed is not None:
        config = config.with_seed(seed)
    target = build_target(
        benchmark, bits=bits, table=table, n_outputs=n_outputs, name=name
    )
    spec = build_run_spec(target, architecture, algorithm, config)
    start = time.perf_counter()
    result = spec.execute()
    elapsed = time.perf_counter() - start
    return artifact_from_result(spec, result, elapsed_seconds=elapsed)
