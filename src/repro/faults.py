"""Deterministic fault injection for the experiment engine.

The checkpointed engine (:mod:`repro.experiments.engine`) and its
chaos tests need *reproducible* failures: a fault plan names exactly
which jobs fail, how, and on which attempt, so a test (or the CI chaos
job) can assert that the recovered campaign is byte-identical to a
fault-free one and that the retry/quarantine counters match the plan.

A plan is a ``;``-separated list of fault specs::

    crash@3             worker for job 3 dies (os._exit) on attempt 0
    hang@5              worker for job 5 hangs (parent must time it out)
    corrupt@2           worker writes a truncated payload, then exits 0
    crash@4#1           fires on retry attempt 1 instead of attempt 0
    crash@4#*           fires on *every* attempt (makes job 4 poison)
    abort@3             SIGKILL the *engine* right after job 3 persists
    kill-shard@1        SIGKILL the engine running shard 1 right after
                        it *claims* its first job (kill-shard@1#2 waits
                        for its third claim) — leaving a stale lease and
                        no checkpoint, the textbook straggler the
                        shard-chaos suites prove a sibling reclaims
    stale-lease@5       plant an expired ghost lease on job 5 before it
                        is claimed, forcing the claim path through the
                        expire/steal reclaim (shared-dir stores only)

Plans come from the ``REPRO_FAULTS`` environment variable (the CLI and
CI chaos job) or are passed programmatically to the engine.  With no
plan active every helper is a cheap no-op, and the engine's outputs
are byte-identical to the unfaulted path.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

__all__ = [
    "ENV_VAR",
    "WORKER_KINDS",
    "ENGINE_KINDS",
    "SHARD_KINDS",
    "STORE_KINDS",
    "CRASH_EXIT_CODE",
    "Fault",
    "FaultPlan",
    "from_env",
    "inject_worker_fault",
]

#: environment variable holding the active fault plan
ENV_VAR = "REPRO_FAULTS"

#: faults executed inside a worker process
WORKER_KINDS = ("crash", "hang", "corrupt")

#: faults executed by the engine (parent) process
ENGINE_KINDS = ("abort",)

#: faults keyed by *shard index* rather than job index: the engine
#: running that shard SIGKILLs itself after persisting N+1 jobs
SHARD_KINDS = ("kill-shard",)

#: faults executed by the checkpoint store's claim path
STORE_KINDS = ("stale-lease",)

#: exit status of a worker killed by an injected crash
CRASH_EXIT_CODE = 66

#: how long an injected hang sleeps — far beyond any sane job timeout
HANG_SECONDS = 3600.0


@dataclass(frozen=True)
class Fault:
    """One planned failure.

    ``attempt`` selects which execution attempt of the job the fault
    fires on (0 = first try); ``None`` means every attempt, which turns
    the job into a poison job that must end up quarantined.
    """

    kind: str
    job_index: int
    attempt: Optional[int] = 0

    def __post_init__(self) -> None:
        known = WORKER_KINDS + ENGINE_KINDS + SHARD_KINDS + STORE_KINDS
        if self.kind not in known:
            raise ValueError(
                f"unknown fault kind {self.kind!r}; choose from {known}"
            )
        if self.job_index < 0:
            raise ValueError("job_index must be >= 0")
        if self.attempt is not None and self.attempt < 0:
            raise ValueError("attempt must be >= 0 (or None for every attempt)")

    def render(self) -> str:
        spec = f"{self.kind}@{self.job_index}"
        if self.attempt is None:
            return f"{spec}#*"
        if self.attempt != 0:
            return f"{spec}#{self.attempt}"
        return spec

    @classmethod
    def parse(cls, text: str) -> "Fault":
        spec = text.strip()
        if "@" not in spec:
            raise ValueError(
                f"bad fault spec {text!r}: expected kind@jobindex[#attempt]"
            )
        kind, _, rest = spec.partition("@")
        attempt: Optional[int] = 0
        if "#" in rest:
            index_text, _, attempt_text = rest.partition("#")
            attempt = None if attempt_text == "*" else int(attempt_text)
        else:
            index_text = rest
        return cls(kind.strip(), int(index_text), attempt)


@dataclass(frozen=True)
class FaultPlan:
    """An immutable, ordered collection of planned faults."""

    faults: Tuple[Fault, ...] = ()

    @classmethod
    def parse(cls, text: Optional[str]) -> "FaultPlan":
        """Parse a ``;``-separated plan string (empty/None = no faults)."""
        if not text or not text.strip():
            return cls()
        return cls(
            tuple(Fault.parse(part) for part in text.split(";") if part.strip())
        )

    def render(self) -> str:
        return ";".join(fault.render() for fault in self.faults)

    def __bool__(self) -> bool:
        return bool(self.faults)

    def __len__(self) -> int:
        return len(self.faults)

    def counts(self) -> Dict[str, int]:
        """Histogram of fault kinds, e.g. ``{"crash": 2, "hang": 1}``."""
        histogram: Dict[str, int] = {}
        for fault in self.faults:
            histogram[fault.kind] = histogram.get(fault.kind, 0) + 1
        return histogram

    def worker_fault(self, job_index: int, attempt: int) -> Optional[Fault]:
        """The worker-side fault to inject for this (job, attempt), if any."""
        for fault in self.faults:
            if (
                fault.kind in WORKER_KINDS
                and fault.job_index == job_index
                and (fault.attempt is None or fault.attempt == attempt)
            ):
                return fault
        return None

    def engine_fault(self, job_index: int) -> Optional[Fault]:
        """The engine-side fault that fires once this job has persisted."""
        for fault in self.faults:
            if fault.kind in ENGINE_KINDS and fault.job_index == job_index:
                return fault
        return None

    def shard_kill(
        self, shard_index: Optional[int], claimed: int
    ) -> Optional[Fault]:
        """The ``kill-shard`` fault due now, if any.

        ``shard_index`` is the engine's shard identity (``None`` =
        unsharded, never killed); ``claimed`` counts the jobs this
        engine has successfully claimed so far.  ``kill-shard@i``
        fires right after shard ``i``'s first claim — a stale lease
        and no checkpoint, the textbook straggler; ``kill-shard@i#k``
        fires after the ``k+1``-th claim (``#*`` behaves like the
        default ``#0``).
        """
        if shard_index is None:
            return None
        for fault in self.faults:
            if fault.kind not in SHARD_KINDS or fault.job_index != shard_index:
                continue
            after = (fault.attempt or 0) + 1
            if claimed == after:
                return fault
        return None

    def lease_fault(self, job_index: int) -> Optional[Fault]:
        """The store-side fault to inject before claiming this job."""
        for fault in self.faults:
            if fault.kind in STORE_KINDS and fault.job_index == job_index:
                return fault
        return None


def from_env(environ=os.environ) -> FaultPlan:
    """The plan configured via ``REPRO_FAULTS`` (empty when unset)."""
    return FaultPlan.parse(environ.get(ENV_VAR))


def inject_worker_fault(fault: Optional[Fault]) -> None:
    """Execute a pre-computation worker fault (crash / hang).

    ``corrupt`` is handled by the worker's persistence step (the
    computation itself succeeds; the payload written is garbage), so it
    is a no-op here.
    """
    if fault is None:
        return
    if fault.kind == "crash":
        os._exit(CRASH_EXIT_CODE)
    if fault.kind == "hang":
        time.sleep(HANG_SECONDS)
