"""Gate-level hardware model: cells, blocks, architectures, engines.

This subpackage substitutes for the paper's Verilog + Synopsys flow
(DC for area/timing, VCS for functional verification, PrimeTime for
power) with an equivalent Python model — see DESIGN.md §4 for the
substitution argument.
"""

from .area import AreaReport, area_report
from .architectures import (
    BtoNormalDesign,
    MultiSharedNdDesign,
    BtoNormalNdDesign,
    DaltaDesign,
    Design,
    ExactLutDesign,
    RoundInDesign,
    RoundOutDesign,
    build_architecture,
)
from .cells import NANGATE45, Cell, CellLibrary
from .export import design_to_dict, export_design
from .lut_ram import LutRam
from .netlist import Block, ClockGateBlock, Mux2Block, ToggleLedger
from .power import EnergyReport, measure_energy, random_read_workload
from .routing import RoutingBox
from .simulate import VerificationResult, verify_design
from .timing import TimingReport, timing_report
from .verilog import emit_design, emit_memory_images, emit_testbench

__all__ = [
    "AreaReport",
    "area_report",
    "BtoNormalDesign",
    "MultiSharedNdDesign",
    "BtoNormalNdDesign",
    "DaltaDesign",
    "Design",
    "ExactLutDesign",
    "RoundInDesign",
    "RoundOutDesign",
    "build_architecture",
    "NANGATE45",
    "design_to_dict",
    "export_design",
    "Cell",
    "CellLibrary",
    "LutRam",
    "Block",
    "ClockGateBlock",
    "Mux2Block",
    "ToggleLedger",
    "EnergyReport",
    "measure_energy",
    "random_read_workload",
    "RoutingBox",
    "VerificationResult",
    "verify_design",
    "TimingReport",
    "timing_report",
    "emit_design",
    "emit_memory_images",
    "emit_testbench",
]
