"""Functional verification driver (the VCS substitute).

The paper verifies each synthesized architecture's functionality with
Synopsys VCS.  Our equivalent drives the structural model with input
vectors and asserts that the produced output words equal the
decomposition-level reference (``Design.approx_table``), which is in
turn tested against the algorithm-level semantics.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from .netlist import ToggleLedger
from .power import random_read_workload

__all__ = ["VerificationResult", "verify_design"]


@dataclass
class VerificationResult:
    """Outcome of a functional-verification run."""

    design_name: str
    n_vectors: int
    n_mismatches: int
    first_mismatch: Optional[int] = None

    @property
    def passed(self) -> bool:
        return self.n_mismatches == 0

    def __repr__(self) -> str:
        status = "PASS" if self.passed else f"FAIL ({self.n_mismatches} mismatches)"
        return (
            f"VerificationResult({self.design_name!r}, "
            f"{self.n_vectors} vectors: {status})"
        )


def verify_design(
    design,
    words: Optional[np.ndarray] = None,
    n_vectors: int = 1024,
    seed: Optional[int] = 0,
    exhaustive: bool = False,
) -> VerificationResult:
    """Drive ``design`` with vectors and compare against its reference.

    ``exhaustive=True`` applies every possible input word (practical
    for the widths the bundled harness uses); otherwise ``n_vectors``
    random words are used, like the paper's 1024-read runs.
    """
    if words is None:
        if exhaustive:
            words = np.arange(design.target.size, dtype=np.int64)
        else:
            words = random_read_workload(design.n_inputs, n_vectors, seed)
    words = np.asarray(words, dtype=np.int64)
    ledger = ToggleLedger()
    produced = design.simulate(words, ledger)
    expected = design.approx_table()[words]
    mismatches = np.flatnonzero(produced != expected)
    return VerificationResult(
        design_name=design.name,
        n_vectors=len(words),
        n_mismatches=len(mismatches),
        first_mismatch=int(words[mismatches[0]]) if len(mismatches) else None,
    )
