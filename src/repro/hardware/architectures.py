"""Gate-level architecture generators.

Builds the structural model of every architecture the paper evaluates:

* :class:`DaltaDesign` — DALTA's approximate single-output LUTs
  (Fig. 1(b)): routing box + bound table + free table per output bit.
* :class:`BtoNormalDesign` — the first reconfigurable architecture
  (Fig. 2(b)): adds a clock gate on the free table and an output mux so
  each bit can run bound-table-only.
* :class:`BtoNormalNdDesign` — the second architecture (Fig. 4): two
  free tables, supporting BTO / normal / non-disjoint modes per bit.
* :class:`ExactLutDesign`, :class:`RoundOutDesign`,
  :class:`RoundInDesign` — the exact LUT and the two rounding baselines
  of §V-B.

Every design supports functional simulation with exact per-cell toggle
accounting; the architecture output is asserted against the
decomposition semantics by :func:`repro.hardware.simulate.verify_design`
(our stand-in for the paper's VCS verification).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from ..boolean.decomposition import (
    DisjointDecomposition,
    MultiSharedDecomposition,
    NonDisjointDecomposition,
)
from ..boolean.function import BooleanFunction
from ..core.settings import SettingSequence
from .cells import CellLibrary, NANGATE45
from .lut_ram import LutRam
from .netlist import ClockGateBlock, Mux2Block, ToggleLedger, merge_census
from .routing import RoutingBox

__all__ = [
    "Design",
    "DaltaDesign",
    "BtoNormalDesign",
    "BtoNormalNdDesign",
    "MultiSharedNdDesign",
    "ExactLutDesign",
    "RoundOutDesign",
    "RoundInDesign",
    "build_architecture",
]


# ======================================================================
# Per-output-bit units
# ======================================================================
class _UnitBase:
    """One output bit's datapath; shared plumbing of the three units."""

    def __init__(self, name: str, n_inputs: int, decomposition, library) -> None:
        self.name = name
        self.n_inputs = n_inputs
        self.decomposition = decomposition
        self.library = library
        partition = decomposition.partition
        partition.validate_for(n_inputs)
        self.partition = partition
        self.n_bound = partition.n_bound
        self.n_free = partition.n_free
        # Route bound bits onto the low pins, free bits above (Fig. 1(b)).
        permutation = partition.bound + partition.free
        self.routing = RoutingBox(f"{name}.route", n_inputs, permutation, library)
        self.bound_ram = LutRam(
            f"{name}.bound", self.n_bound, 1, decomposition.bound_table(), library
        )

    @property
    def mode(self) -> str:
        return self.decomposition.mode

    def _split(self, routed: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
        """(bound address, free row index) of each routed word."""
        mask = (1 << self.n_bound) - 1
        return routed & mask, routed >> self.n_bound

    @staticmethod
    def _free_contents(decomposition: DisjointDecomposition) -> np.ndarray:
        """Flatten ``F[row, φ]`` into address order ``(row << 1) | φ``."""
        return decomposition.free_table().reshape(-1)

    def census(self) -> Dict[str, int]:
        raise NotImplementedError

    def critical_path_ps(self) -> float:
        raise NotImplementedError

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        raise NotImplementedError


class SingleOutputUnit(_UnitBase):
    """DALTA's approximate single-output LUT (normal mode only)."""

    def __init__(self, name, n_inputs, decomposition, library) -> None:
        if not isinstance(decomposition, DisjointDecomposition):
            raise TypeError("DALTA units host disjoint decompositions only")
        if decomposition.mode not in ("normal", "bto"):
            raise ValueError(
                f"DALTA architecture cannot host mode {decomposition.mode!r}"
            )
        if decomposition.mode == "bto":
            raise ValueError(
                "DALTA's rigid architecture has no BTO mode; "
                "use the bto-normal architecture"
            )
        super().__init__(name, n_inputs, decomposition, library)
        self.free_ram = LutRam(
            f"{name}.free",
            self.n_free + 1,
            1,
            self._free_contents(decomposition),
            library,
        )

    def census(self) -> Dict[str, int]:
        return merge_census(
            [self.routing.census(), self.bound_ram.census(), self.free_ram.census()]
        )

    def critical_path_ps(self) -> float:
        return (
            self.routing.critical_path_ps()
            + self.bound_ram.critical_path_ps()
            + self.free_ram.critical_path_ps()
        )

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        routed = self.routing.simulate(words, ledger)
        bound_addr, row = self._split(routed)
        phi = self.bound_ram.simulate(bound_addr, ledger)
        free_addr = (row << 1) | phi
        return self.free_ram.simulate(free_addr, ledger)


class BtoNormalUnit(_UnitBase):
    """Fig. 2(b): free table behind a clock gate, output mux on *mode*."""

    def __init__(self, name, n_inputs, decomposition, library) -> None:
        if not isinstance(decomposition, DisjointDecomposition):
            raise TypeError("BTO-Normal units host disjoint decompositions only")
        if decomposition.mode not in ("normal", "bto"):
            raise ValueError(
                f"BTO-Normal architecture cannot host mode {decomposition.mode!r}"
            )
        super().__init__(name, n_inputs, decomposition, library)
        self.free_ram = LutRam(
            f"{name}.free",
            self.n_free + 1,
            1,
            self._free_contents(decomposition),
            library,
        )
        self.gate = ClockGateBlock(f"{name}.gate", library)
        self.out_mux = Mux2Block(f"{name}.mux", 1, library)

    def census(self) -> Dict[str, int]:
        return merge_census(
            [
                self.routing.census(),
                self.bound_ram.census(),
                self.free_ram.census(),
                self.gate.census(),
                self.out_mux.census(),
            ]
        )

    def critical_path_ps(self) -> float:
        # Timing is set by the structure (normal-mode worst case),
        # independent of the configured mode — the paper's equal-delay
        # constraint.
        return (
            self.routing.critical_path_ps()
            + self.bound_ram.critical_path_ps()
            + self.free_ram.critical_path_ps()
            + self.out_mux.critical_path_ps()
        )

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        routed = self.routing.simulate(words, ledger)
        bound_addr, row = self._split(routed)
        phi = self.bound_ram.simulate(bound_addr, ledger)
        normal = self.mode == "normal"
        self.gate.simulate(len(words), enabled=normal, ledger=ledger)
        if normal:
            free_addr = (row << 1) | phi
            free_out = self.free_ram.simulate(free_addr, ledger, enabled=True)
            select = np.ones(len(words), dtype=bool)
        else:
            # Gated free table: clock off, output frozen.
            free_out = np.zeros(len(words), dtype=np.int64)
            select = np.zeros(len(words), dtype=bool)
        return self.out_mux.simulate(select, phi, free_out, ledger)


class BtoNormalNdUnit(_UnitBase):
    """Fig. 4: two gated free tables; BTO / normal / ND per configuration."""

    def __init__(self, name, n_inputs, decomposition, library) -> None:
        super().__init__(name, n_inputs, decomposition, library)
        n_free_addr = self.n_free + 1
        zeros = np.zeros(1 << n_free_addr, dtype=np.int64)
        if isinstance(decomposition, NonDisjointDecomposition):
            table0, table1 = decomposition.free_tables()
            contents0 = table0.reshape(-1)
            contents1 = table1.reshape(-1)
            # Bit position of the shared variable on the routed word.
            self.shared_pos: Optional[int] = self.partition.bound.index(
                decomposition.shared
            )
        elif isinstance(decomposition, DisjointDecomposition):
            if decomposition.mode == "normal":
                contents0 = self._free_contents(decomposition)
            else:  # bto — free tables unused
                contents0 = zeros
            contents1 = zeros
            self.shared_pos = None
        else:
            raise TypeError(f"unsupported decomposition {type(decomposition)!r}")
        self.free0 = LutRam(f"{name}.free0", n_free_addr, 1, contents0, library)
        self.free1 = LutRam(f"{name}.free1", n_free_addr, 1, contents1, library)
        self.gate0 = ClockGateBlock(f"{name}.gate0", library)
        self.gate1 = ClockGateBlock(f"{name}.gate1", library)
        self.xs_mux = Mux2Block(f"{name}.xsmux", 1, library)
        self.out_mux = Mux2Block(f"{name}.outmux", 1, library)

    def census(self) -> Dict[str, int]:
        return merge_census(
            [
                self.routing.census(),
                self.bound_ram.census(),
                self.free0.census(),
                self.free1.census(),
                self.gate0.census(),
                self.gate1.census(),
                self.xs_mux.census(),
                self.out_mux.census(),
            ]
        )

    def critical_path_ps(self) -> float:
        return (
            self.routing.critical_path_ps()
            + self.bound_ram.critical_path_ps()
            + self.free0.critical_path_ps()
            + self.xs_mux.critical_path_ps()
            + self.out_mux.critical_path_ps()
        )

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        routed = self.routing.simulate(words, ledger)
        bound_addr, row = self._split(routed)
        phi = self.bound_ram.simulate(bound_addr, ledger)
        cycles = len(words)
        mode = self.mode
        zeros = np.zeros(cycles, dtype=np.int64)

        on0 = mode in ("normal", "nd")
        on1 = mode == "nd"
        self.gate0.simulate(cycles, enabled=on0, ledger=ledger)
        self.gate1.simulate(cycles, enabled=on1, ledger=ledger)

        free_addr = (row << 1) | phi
        out0 = self.free0.simulate(free_addr, ledger, enabled=on0) if on0 else zeros
        out1 = self.free1.simulate(free_addr, ledger, enabled=on1) if on1 else zeros

        if mode == "nd":
            assert self.shared_pos is not None
            xs = ((bound_addr >> self.shared_pos) & 1).astype(bool)
        else:
            xs = np.zeros(cycles, dtype=bool)
        free_path = self.xs_mux.simulate(xs, out0, out1, ledger)

        select_free = np.full(cycles, mode != "bto", dtype=bool)
        return self.out_mux.simulate(select_free, phi, free_path, ledger)


class MultiSharedNdUnit(_UnitBase):
    """Extension unit: ``2**s`` gated free tables, mux tree on ``C``.

    Hosts :class:`MultiSharedDecomposition` settings (and plain
    disjoint settings, which simply gate the surplus tables) on a
    homogeneous architecture with ``n_free_tables = 2**s_max`` free
    tables per output bit.  Not part of the paper — this is the
    generalisation it rules out on cost grounds, built to measure that
    cost (see the shared-bits ablation).
    """

    def __init__(self, name, n_inputs, decomposition, library, n_shared_max=1):
        super().__init__(name, n_inputs, decomposition, library)
        self.n_shared_max = int(n_shared_max)
        if self.n_shared_max < 1:
            raise ValueError("n_shared_max must be >= 1")
        n_tables = 1 << self.n_shared_max
        n_free_addr = self.n_free + 1
        zeros = np.zeros(1 << n_free_addr, dtype=np.int64)

        if isinstance(decomposition, MultiSharedDecomposition):
            if decomposition.n_shared > self.n_shared_max:
                raise ValueError(
                    f"decomposition shares {decomposition.n_shared} bits but the "
                    f"architecture provides only 2**{self.n_shared_max} tables"
                )
            tables = [t.reshape(-1) for t in decomposition.free_tables()]
            positions = {v: i for i, v in enumerate(self.partition.bound)}
            self.select_positions = [positions[v] for v in decomposition.shared]
        elif isinstance(decomposition, DisjointDecomposition):
            if decomposition.mode == "bto":
                tables = []
            else:
                tables = [self._free_contents(decomposition)]
            self.select_positions = []
        else:
            raise TypeError(f"unsupported decomposition {type(decomposition)!r}")

        self.active_tables = len(tables)
        while len(tables) < n_tables:
            tables.append(zeros)
        self.free_rams = [
            LutRam(f"{name}.free{j}", n_free_addr, 1, tables[j], library)
            for j in range(n_tables)
        ]
        self.gates = [
            ClockGateBlock(f"{name}.gate{j}", library) for j in range(n_tables)
        ]
        self.select_muxes = Mux2Block(f"{name}.selmux", max(1, n_tables - 1), library)
        self.out_mux = Mux2Block(f"{name}.outmux", 1, library)

    def census(self) -> Dict[str, int]:
        blocks = [self.routing, self.bound_ram, self.select_muxes, self.out_mux]
        blocks += self.free_rams + self.gates
        return merge_census(block.census() for block in blocks)

    def critical_path_ps(self) -> float:
        return (
            self.routing.critical_path_ps()
            + self.bound_ram.critical_path_ps()
            + self.free_rams[0].critical_path_ps()
            + self.library.delay_ps("MUX2_X1", stages=self.n_shared_max)
            + self.out_mux.critical_path_ps()
        )

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        routed = self.routing.simulate(words, ledger)
        bound_addr, row = self._split(routed)
        phi = self.bound_ram.simulate(bound_addr, ledger)
        cycles = len(words)
        free_addr = (row << 1) | phi
        zeros = np.zeros(cycles, dtype=np.int64)

        outputs = []
        for j, (ram, gate) in enumerate(zip(self.free_rams, self.gates)):
            enabled = j < self.active_tables
            gate.simulate(cycles, enabled=enabled, ledger=ledger)
            if enabled:
                outputs.append(ram.simulate(free_addr, ledger, enabled=True))
            else:
                ram.simulate(free_addr[:0], ledger, enabled=False)
                outputs.append(zeros)

        # Reduce through the select-mux tree on the shared bits.
        if self.select_positions:
            select_bits = [
                ((bound_addr >> pos) & 1).astype(bool)
                for pos in self.select_positions
            ]
            level = outputs[: 1 << len(self.select_positions)]
            for depth, bits in enumerate(select_bits):
                level = [
                    self._mux_pair(level[2 * i], level[2 * i + 1], bits, ledger)
                    for i in range(len(level) // 2)
                ]
            free_out = level[0]
        else:
            free_out = outputs[0]

        is_bto = self.mode == "bto"
        select = np.full(cycles, not is_bto, dtype=bool)
        return self.out_mux.simulate(select, phi, free_out, ledger)

    def _mux_pair(self, value0, value1, select, ledger) -> np.ndarray:
        out = np.where(select, value1, value0)
        from .netlist import toggles_between

        ledger.add("MUX2_X1", toggles_between(out.astype(np.int64)))
        return out


# ======================================================================
# Designs
# ======================================================================
class Design:
    """Base class: a complete multi-output architecture instance."""

    def __init__(
        self,
        name: str,
        target: BooleanFunction,
        library: Optional[CellLibrary] = None,
    ) -> None:
        self.name = name
        self.target = target
        self.library = library or NANGATE45

    @property
    def n_inputs(self) -> int:
        return self.target.n_inputs

    @property
    def n_outputs(self) -> int:
        return self.target.n_outputs

    # -- to be provided by subclasses -----------------------------------
    def census(self) -> Dict[str, int]:
        raise NotImplementedError

    def critical_path_ps(self) -> float:
        raise NotImplementedError

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        """Functional + power simulation of a read sequence."""
        raise NotImplementedError

    def approx_table(self) -> np.ndarray:
        """The output word the design should produce for every input."""
        raise NotImplementedError

    def storage_bits(self) -> int:
        """Total LUT storage bits (DFF count of the RAM blocks)."""
        return self.census().get("DFF_X1", 0)

    # -- rollups ---------------------------------------------------------
    def area_um2(self) -> float:
        return self.library.area_um2(self.census())

    def leakage_nw(self) -> float:
        return self.library.leakage_nw(self.census())

    def mode_counts(self) -> Dict[str, int]:
        return {}

    def report(self) -> str:
        lines = [
            f"design {self.name}: {self.n_inputs}-input {self.n_outputs}-output",
            f"  area: {self.area_um2():.1f} um^2",
            f"  leakage: {self.leakage_nw() / 1000:.2f} uW",
            f"  critical path: {self.critical_path_ps():.0f} ps",
            f"  LUT storage: {self.storage_bits()} bits",
        ]
        modes = self.mode_counts()
        if modes:
            lines.append(f"  modes: {modes}")
        return "\n".join(lines)

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class _DecomposedDesign(Design):
    """Common shape of the three decomposition-based designs."""

    unit_class = SingleOutputUnit

    def __init__(
        self,
        name: str,
        target: BooleanFunction,
        sequence: SettingSequence,
        library: Optional[CellLibrary] = None,
    ) -> None:
        super().__init__(name, target, library)
        if not sequence.is_complete():
            raise ValueError("sequence must have a setting for every output bit")
        if len(sequence) != target.n_outputs:
            raise ValueError(
                f"sequence covers {len(sequence)} bits, target has "
                f"{target.n_outputs} outputs"
            )
        self.sequence = sequence
        self.units: List[_UnitBase] = [
            self.unit_class(
                f"{name}.bit{k}",
                target.n_inputs,
                sequence[k].decomposition,
                self.library,
            )
            for k in range(target.n_outputs)
        ]

    def census(self) -> Dict[str, int]:
        return merge_census(unit.census() for unit in self.units)

    def critical_path_ps(self) -> float:
        return max(unit.critical_path_ps() for unit in self.units)

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        words = np.asarray(words, dtype=np.int64)
        output = np.zeros(len(words), dtype=np.int64)
        for k, unit in enumerate(self.units):
            output |= unit.simulate(words, ledger).astype(np.int64) << k
        return output

    def approx_table(self) -> np.ndarray:
        return self.sequence.approx_function(self.target).table

    def mode_counts(self) -> Dict[str, int]:
        return self.sequence.mode_counts()


class DaltaDesign(_DecomposedDesign):
    """The baseline DALTA architecture (normal mode only)."""

    unit_class = SingleOutputUnit


class BtoNormalDesign(_DecomposedDesign):
    """Reconfigurable architecture #1: BTO + normal modes."""

    unit_class = BtoNormalUnit


class BtoNormalNdDesign(_DecomposedDesign):
    """Reconfigurable architecture #2: BTO + normal + ND modes."""

    unit_class = BtoNormalNdUnit


class MultiSharedNdDesign(Design):
    """Extension design: every output bit on a multi-shared ND unit.

    A homogeneous array of :class:`MultiSharedNdUnit` with
    ``2**n_shared_max`` free tables per output bit; disjoint settings
    gate the surplus tables.  Built for the shared-bits ablation.
    """

    def __init__(
        self,
        name: str,
        target: BooleanFunction,
        sequence: SettingSequence,
        n_shared_max: int = 1,
        library: Optional[CellLibrary] = None,
    ) -> None:
        super().__init__(name, target, library)
        if not sequence.is_complete():
            raise ValueError("sequence must have a setting for every output bit")
        self.sequence = sequence
        self.n_shared_max = n_shared_max
        self.units = [
            MultiSharedNdUnit(
                f"{name}.bit{k}",
                target.n_inputs,
                sequence[k].decomposition,
                self.library,
                n_shared_max=n_shared_max,
            )
            for k in range(target.n_outputs)
        ]

    def census(self) -> Dict[str, int]:
        return merge_census(unit.census() for unit in self.units)

    def critical_path_ps(self) -> float:
        return max(unit.critical_path_ps() for unit in self.units)

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        words = np.asarray(words, dtype=np.int64)
        output = np.zeros(len(words), dtype=np.int64)
        for k, unit in enumerate(self.units):
            output |= unit.simulate(words, ledger).astype(np.int64) << k
        return output

    def approx_table(self) -> np.ndarray:
        return self.sequence.approx_function(self.target).table

    def mode_counts(self) -> Dict[str, int]:
        return self.sequence.mode_counts()


class _MonolithicDesign(Design):
    """A single multi-bit LUT RAM with an address-slicing front end."""

    def __init__(self, name, target, n_addr, width, contents, library=None) -> None:
        super().__init__(name, target, library)
        self.ram = LutRam(f"{name}.ram", n_addr, width, contents, self.library)

    def census(self) -> Dict[str, int]:
        return self.ram.census()

    def critical_path_ps(self) -> float:
        return self.ram.critical_path_ps()

    def _address(self, words: np.ndarray) -> np.ndarray:
        return words

    def _reconstruct(self, stored: np.ndarray) -> np.ndarray:
        return stored

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        words = np.asarray(words, dtype=np.int64)
        stored = self.ram.simulate(self._address(words), ledger)
        return self._reconstruct(stored)

    def approx_table(self) -> np.ndarray:
        stored = self.ram.read(self._address(np.arange(self.target.size)))
        return self._reconstruct(stored)


class ExactLutDesign(_MonolithicDesign):
    """The conventional full ``2**n × m`` lookup table."""

    def __init__(self, target: BooleanFunction, library=None) -> None:
        super().__init__(
            f"{target.name}-exact",
            target,
            target.n_inputs,
            target.n_outputs,
            target.table,
            library,
        )


class RoundOutDesign(_MonolithicDesign):
    """RoundOut baseline: drop the ``q`` output LSBs, keep the rest.

    Stores the ``m − q`` MSBs of every entry in a full-depth table; the
    dropped LSBs read back as zeros.
    """

    def __init__(self, target: BooleanFunction, q: int, library=None) -> None:
        if not 1 <= q < target.n_outputs:
            raise ValueError(
                f"q must be in [1, {target.n_outputs - 1}], got {q}"
            )
        self.q = q
        super().__init__(
            f"{target.name}-roundout{q}",
            target,
            target.n_inputs,
            target.n_outputs - q,
            target.table >> q,
            library,
        )

    def _reconstruct(self, stored: np.ndarray) -> np.ndarray:
        return stored << self.q


class RoundInDesign(_MonolithicDesign):
    """RoundIn baseline: drop ``w`` input LSBs, store per-block medians.

    Inputs are grouped into blocks of ``2**w`` adjacent words; each
    block stores the median of its exact outputs (the paper's §V-B
    construction) in a ``2**(n−w)``-entry table.
    """

    def __init__(self, target: BooleanFunction, w: int, library=None) -> None:
        if not 1 <= w < target.n_inputs:
            raise ValueError(f"w must be in [1, {target.n_inputs - 1}], got {w}")
        self.w = w
        blocks = target.table.reshape(-1, 1 << w)
        medians = np.sort(blocks, axis=1)[:, (1 << w) // 2]
        super().__init__(
            f"{target.name}-roundin{w}",
            target,
            target.n_inputs - w,
            target.n_outputs,
            medians,
            library,
        )

    def _address(self, words: np.ndarray) -> np.ndarray:
        return words >> self.w


def build_architecture(
    architecture: str,
    target: BooleanFunction,
    sequence: SettingSequence,
    library: Optional[CellLibrary] = None,
) -> Design:
    """Instantiate the named architecture for a compiled sequence."""
    classes = {
        "dalta": DaltaDesign,
        "bto-normal": BtoNormalDesign,
        "bto-normal-nd": BtoNormalNdDesign,
    }
    try:
        design_class = classes[architecture]
    except KeyError:
        raise ValueError(
            f"unknown architecture {architecture!r}; choose from {sorted(classes)}"
        ) from None
    return design_class(f"{target.name}-{architecture}", target, sequence, library)
