"""Structural design export (JSON).

Dumps a design's block structure — per-unit blocks, cell censuses,
physical rollups, and configuration metadata — as plain data for
external tooling (floorplanning scripts, cost models, documentation
generators).  The export is purely structural: LUT contents ship via
:func:`repro.hardware.verilog.emit_memory_images`.
"""

from __future__ import annotations

import json
from typing import Dict, List

from .architectures import Design, _MonolithicDesign

__all__ = ["design_to_dict", "export_design"]

_FORMAT = "repro-design"
_VERSION = 1


def _block_entry(block) -> Dict:
    return {
        "name": block.name,
        "type": type(block).__name__,
        "census": block.census(),
        "area_um2": block.area_um2(),
        "leakage_nw": block.leakage_nw(),
        "delay_ps": block.critical_path_ps(),
    }


def _unit_blocks(unit) -> List:
    """Every block a unit owns, discovered from its attributes."""
    blocks = [unit.routing, unit.bound_ram]
    for attribute in ("free_ram", "free0", "free1", "gate", "gate0", "gate1",
                      "out_mux", "xs_mux", "select_muxes"):
        block = getattr(unit, attribute, None)
        if block is not None:
            blocks.append(block)
    for collection in ("free_rams", "gates"):
        blocks.extend(getattr(unit, collection, []))
    return blocks


def design_to_dict(design: Design) -> Dict:
    """Serialise a design's structure to plain data."""
    payload: Dict = {
        "format": _FORMAT,
        "version": _VERSION,
        "name": design.name,
        "n_inputs": design.n_inputs,
        "n_outputs": design.n_outputs,
        "library": design.library.name,
        "census": design.census(),
        "area_um2": design.area_um2(),
        "leakage_nw": design.leakage_nw(),
        "critical_path_ps": design.critical_path_ps(),
        "storage_bits": design.storage_bits(),
        "modes": design.mode_counts(),
    }
    units = getattr(design, "units", None)
    if units is not None:
        payload["units"] = [
            {
                "name": unit.name,
                "mode": unit.mode,
                "partition": {
                    "free": list(unit.partition.free),
                    "bound": list(unit.partition.bound),
                },
                "blocks": [_block_entry(block) for block in _unit_blocks(unit)],
            }
            for unit in units
        ]
    elif isinstance(design, _MonolithicDesign):
        payload["units"] = [
            {
                "name": design.ram.name,
                "mode": "monolithic",
                "blocks": [_block_entry(design.ram)],
            }
        ]
    return payload


def export_design(design: Design, path: str) -> None:
    """Write the structural export to a JSON file."""
    with open(path, "w") as handle:
        json.dump(design_to_dict(design), handle, indent=2)
