"""Static timing rollup (the DC "report_timing" substitute).

Every block reports its own pin-to-pin delay; a design's critical path
is the longest unit path.  This module adds the per-unit breakdown
report used by the experiments and docs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

__all__ = ["TimingReport", "timing_report"]


@dataclass
class TimingReport:
    """Critical-path summary of one design."""

    design_name: str
    critical_path_ps: float
    unit_paths: List[Tuple[str, float]]

    @property
    def critical_unit(self) -> str:
        if not self.unit_paths:
            return self.design_name
        return max(self.unit_paths, key=lambda item: item[1])[0]

    def meets(self, clock_period_ns: float) -> bool:
        """True when the critical path fits the clock period."""
        return self.critical_path_ps <= clock_period_ns * 1000.0

    def render(self) -> str:
        lines = [
            f"timing of {self.design_name}: "
            f"critical path {self.critical_path_ps:.0f} ps "
            f"(unit {self.critical_unit})"
        ]
        for name, delay in self.unit_paths:
            lines.append(f"  {name}: {delay:.0f} ps")
        return "\n".join(lines)


def timing_report(design) -> TimingReport:
    """Per-unit path breakdown of a design."""
    units = getattr(design, "units", None)
    if units:
        paths = [(unit.name, unit.critical_path_ps()) for unit in units]
    else:
        paths = [(design.name, design.critical_path_ps())]
    return TimingReport(design.name, design.critical_path_ps(), paths)
