"""Area rollup (the DC "report_area" substitute)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

__all__ = ["AreaReport", "area_report"]


@dataclass
class AreaReport:
    """Cell-census area breakdown of one design."""

    design_name: str
    total_um2: float
    by_cell: Dict[str, float]
    census: Dict[str, int]

    def fraction(self, cell: str) -> float:
        """Share of total area contributed by one cell type."""
        if self.total_um2 <= 0:
            return 0.0
        return self.by_cell.get(cell, 0.0) / self.total_um2

    def render(self) -> str:
        lines = [f"area of {self.design_name}: {self.total_um2:.1f} um^2"]
        for cell in sorted(self.by_cell, key=self.by_cell.get, reverse=True):
            lines.append(
                f"  {cell:<12} x{self.census[cell]:>8}  "
                f"{self.by_cell[cell]:>12.1f} um^2  "
                f"({100 * self.fraction(cell):.1f}%)"
            )
        return "\n".join(lines)


def area_report(design) -> AreaReport:
    """Break a design's area down by cell type."""
    census = design.census()
    by_cell = {
        cell: design.library[cell].area_um2 * count
        for cell, count in census.items()
    }
    return AreaReport(design.name, sum(by_cell.values()), by_cell, census)
