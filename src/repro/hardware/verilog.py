"""Verilog RTL emitter.

Generates synthesizable Verilog for the compiled designs so a
downstream user can push them through a real flow (the paper's
DC + VCS + PrimeTime loop).  The emitted design mirrors the structural
model exactly:

* one generic ``alut_ram`` module (DFF array + registered read port,
  ``$readmemb`` initialisation),
* per-output-bit instances wired through the routing-box permutation
  (static, so it becomes plain bit-select wiring in RTL),
* mode multiplexers and clock-gate enables for the reconfigurable
  architectures.

:func:`emit_memory_images` produces the matching ``$readmemb`` files.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional


from ..boolean.synthesis import lut_image_bits
from .architectures import (
    MultiSharedNdDesign,
    _DecomposedDesign,
    _MonolithicDesign,
)

__all__ = ["emit_design", "emit_memory_images", "emit_testbench", "sanitize_identifier"]

_RAM_MODULE = """\
module alut_ram #(
    parameter AW = 4,
    parameter DW = 1,
    parameter INIT = ""
) (
    input  wire            clk,
    input  wire            en,
    input  wire [AW-1:0]   addr,
    output reg  [DW-1:0]   data
);
    reg [DW-1:0] mem [0:(1<<AW)-1];
    initial begin
        if (INIT != "") $readmemb(INIT, mem);
    end
    always @(posedge clk) begin
        if (en) data <= mem[addr];
    end
endmodule
"""


def sanitize_identifier(name: str) -> str:
    """Turn an arbitrary design name into a legal Verilog identifier."""
    cleaned = re.sub(r"[^A-Za-z0-9_]", "_", name)
    if not cleaned or not (cleaned[0].isalpha() or cleaned[0] == "_"):
        cleaned = "m_" + cleaned
    return cleaned


def _mem_name(module: str, instance: str) -> str:
    return f"{module}_{sanitize_identifier(instance)}.mem"


def _concat_bits(signal: str, positions) -> str:
    """Verilog concatenation selecting the given bit positions (MSB first)."""
    return "{" + ", ".join(f"{signal}[{p}]" for p in reversed(list(positions))) + "}"


def _emit_unit(lines: List[str], module: str, k: int, unit) -> None:
    """Emit the wiring of one output bit's unit into ``lines``."""
    part = unit.partition
    b = part.n_bound
    mode = unit.mode
    lines.append(f"    // ---- output bit {k} (mode: {mode}) ----")
    lines.append(
        f"    wire [{b - 1}:0] baddr_{k} = {_concat_bits('x', part.bound)};"
    )
    lines.append(
        f"    wire [{part.n_free - 1}:0] row_{k} = "
        f"{_concat_bits('x', part.free)};"
    )
    lines.append(f"    wire phi_{k};")
    bound_mem = _mem_name(module, f"bit{k}_bound")
    lines.append(
        f"    alut_ram #(.AW({b}), .DW(1), .INIT(\"{bound_mem}\")) "
        f"u_bound_{k} (.clk(clk), .en(1'b1), .addr(baddr_{k}), .data(phi_{k}));"
    )
    faw = part.n_free + 1
    lines.append(
        f"    wire [{faw - 1}:0] faddr_{k} = {{row_{k}, phi_{k}}};"
    )

    if hasattr(unit, "free_rams"):  # multi-shared extension unit
        n_tables = len(unit.free_rams)
        for idx in range(n_tables):
            en = "1'b1" if idx < unit.active_tables else "1'b0"
            mem = _mem_name(module, f"bit{k}_free{idx}")
            lines.append(f"    wire f{idx}_{k};")
            lines.append(
                f"    alut_ram #(.AW({faw}), .DW(1), .INIT(\"{mem}\")) "
                f"u_free{idx}_{k} (.clk(clk), .en({en}), .addr(faddr_{k}), "
                f".data(f{idx}_{k}));"
            )
        if unit.select_positions:
            level = [f"f{idx}_{k}" for idx in range(1 << len(unit.select_positions))]
            for depth, pos in enumerate(unit.select_positions):
                next_level = []
                for i in range(len(level) // 2):
                    wire = f"sel{depth}_{i}_{k}"
                    lines.append(
                        f"    wire {wire} = baddr_{k}[{pos}] ? "
                        f"{level[2 * i + 1]} : {level[2 * i]};"
                    )
                    next_level.append(wire)
                level = next_level
            selected = level[0]
        else:
            selected = f"f0_{k}"
        use_free = "1'b1" if mode != "bto" else "1'b0"
        lines.append(f"    assign y[{k}] = {use_free} ? {selected} : phi_{k};")
    elif hasattr(unit, "free0"):  # BTO-Normal-ND unit
        en0 = "1'b1" if mode in ("normal", "nd") else "1'b0"
        en1 = "1'b1" if mode == "nd" else "1'b0"
        for idx, en in ((0, en0), (1, en1)):
            mem = _mem_name(module, f"bit{k}_free{idx}")
            lines.append(f"    wire f{idx}_{k};")
            lines.append(
                f"    alut_ram #(.AW({faw}), .DW(1), .INIT(\"{mem}\")) "
                f"u_free{idx}_{k} (.clk(clk), .en({en}), .addr(faddr_{k}), "
                f".data(f{idx}_{k}));"
            )
        if unit.shared_pos is not None:
            xs = f"baddr_{k}[{unit.shared_pos}]"
        else:
            xs = "1'b0"
        lines.append(f"    wire fsel_{k} = {xs} ? f1_{k} : f0_{k};")
        use_free = "1'b1" if mode != "bto" else "1'b0"
        lines.append(f"    assign y[{k}] = {use_free} ? fsel_{k} : phi_{k};")
    elif hasattr(unit, "out_mux"):  # BTO-Normal unit
        en = "1'b1" if mode == "normal" else "1'b0"
        mem = _mem_name(module, f"bit{k}_free")
        lines.append(f"    wire f_{k};")
        lines.append(
            f"    alut_ram #(.AW({faw}), .DW(1), .INIT(\"{mem}\")) "
            f"u_free_{k} (.clk(clk), .en({en}), .addr(faddr_{k}), .data(f_{k}));"
        )
        lines.append(f"    assign y[{k}] = {en} ? f_{k} : phi_{k};")
    else:  # DALTA unit
        mem = _mem_name(module, f"bit{k}_free")
        lines.append(f"    wire f_{k};")
        lines.append(
            f"    alut_ram #(.AW({faw}), .DW(1), .INIT(\"{mem}\")) "
            f"u_free_{k} (.clk(clk), .en(1'b1), .addr(faddr_{k}), .data(f_{k}));"
        )
        lines.append(f"    assign y[{k}] = f_{k};")
    lines.append("")


def emit_design(design, module_name: Optional[str] = None) -> str:
    """Emit the complete RTL of a design (top module + RAM module)."""
    module = sanitize_identifier(module_name or design.name)
    n, m = design.n_inputs, design.n_outputs
    lines: List[str] = [
        f"// Generated by repro.hardware.verilog for design '{design.name}'",
        f"// {n}-input, {m}-output approximate lookup table",
        "",
        f"module {module} (",
        "    input  wire              clk,",
        f"    input  wire [{n - 1}:0]  x,",
        f"    output wire [{m - 1}:0]  y",
        ");",
    ]
    if isinstance(design, (_DecomposedDesign, MultiSharedNdDesign)):
        lines.append("")
        for k, unit in enumerate(design.units):
            _emit_unit(lines, module, k, unit)
    elif isinstance(design, _MonolithicDesign):
        ram = design.ram
        mem = _mem_name(module, "ram")
        if hasattr(design, "w"):  # RoundIn slices the address
            address = f"x[{n - 1}:{design.w}]"
        else:
            address = "x"
        lines.append(f"    wire [{ram.width - 1}:0] stored;")
        lines.append(
            f"    alut_ram #(.AW({ram.n_addr}), .DW({ram.width}), "
            f".INIT(\"{mem}\")) u_ram (.clk(clk), .en(1'b1), "
            f".addr({address}), .data(stored));"
        )
        if hasattr(design, "q"):  # RoundOut pads the dropped LSBs
            lines.append(f"    assign y = {{stored, {design.q}'b0}};")
        else:
            lines.append("    assign y = stored;")
    else:
        raise TypeError(f"cannot emit Verilog for {type(design).__name__}")
    lines.append("endmodule")
    lines.append("")
    lines.append(_RAM_MODULE)
    return "\n".join(lines)


def emit_memory_images(design, module_name: Optional[str] = None) -> Dict[str, str]:
    """The ``$readmemb`` files referenced by :func:`emit_design`."""
    module = sanitize_identifier(module_name or design.name)
    images: Dict[str, str] = {}
    if isinstance(design, (_DecomposedDesign, MultiSharedNdDesign)):
        for k, unit in enumerate(design.units):
            images[_mem_name(module, f"bit{k}_bound")] = lut_image_bits(
                unit.bound_ram.contents
            )
            if hasattr(unit, "free_rams"):
                for idx, ram in enumerate(unit.free_rams):
                    images[_mem_name(module, f"bit{k}_free{idx}")] = lut_image_bits(
                        ram.contents
                    )
            elif hasattr(unit, "free0"):
                images[_mem_name(module, f"bit{k}_free0")] = lut_image_bits(
                    unit.free0.contents
                )
                images[_mem_name(module, f"bit{k}_free1")] = lut_image_bits(
                    unit.free1.contents
                )
            else:
                images[_mem_name(module, f"bit{k}_free")] = lut_image_bits(
                    unit.free_ram.contents
                )
    elif isinstance(design, _MonolithicDesign):
        ram = design.ram
        rows = [
            format(int(word), f"0{ram.width}b") for word in ram.contents
        ]
        images[_mem_name(module, "ram")] = "\n".join(rows)
    else:
        raise TypeError(f"cannot emit memories for {type(design).__name__}")
    return images


def emit_testbench(design, module_name: Optional[str] = None, n_vectors: int = 64) -> str:
    """A self-checking testbench applying the reference truth table."""
    module = sanitize_identifier(module_name or design.name)
    n, m = design.n_inputs, design.n_outputs
    table = design.approx_table()
    step = max(1, design.target.size // n_vectors)
    checks = []
    for x in range(0, design.target.size, step):
        checks.append(
            f"        apply({n}'d{x}, {m}'d{int(table[x])});"
        )
    body = "\n".join(checks)
    return f"""\
// Self-checking testbench for {module}
`timescale 1ns/1ps
module {module}_tb;
    reg clk = 0;
    reg [{n - 1}:0] x;
    wire [{m - 1}:0] y;
    integer errors = 0;

    {module} dut (.clk(clk), .x(x), .y(y));
    always #1 clk = ~clk;

    task apply(input [{n - 1}:0] vec, input [{m - 1}:0] expect);
        begin
            x = vec;
            @(posedge clk); @(posedge clk); #0.1;
            if (y !== expect) begin
                errors = errors + 1;
                $display("MISMATCH x=%0d y=%0d expected=%0d", vec, y, expect);
            end
        end
    endtask

    initial begin
{body}
        if (errors == 0) $display("PASS");
        else $display("FAIL: %0d errors", errors);
        $finish;
    end
endmodule
"""
