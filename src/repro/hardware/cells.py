"""Standard-cell library model.

The paper synthesises its architectures with Synopsys DC on the
Nangate 45 nm open cell library and measures power with PrimeTime.
We substitute a compact cell model: each cell contributes

* ``area_um2`` — placement area,
* ``leakage_nw`` — static power,
* ``energy_fj`` — dynamic energy per output toggle (internal +
  switching, lumped),
* ``delay_ps`` — pin-to-pin propagation delay used by the static
  timing engine.

The bundled :data:`NANGATE45` numbers are representative of the
Nangate 45 nm typical corner.  Absolute values are not calibrated
against the authors' testbed — the experiments only use *ratios*
between architectures, which are driven by cell counts and activity,
not by the absolute fJ/µm² scale (see DESIGN.md §4).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping

__all__ = ["Cell", "CellLibrary", "NANGATE45"]


@dataclass(frozen=True)
class Cell:
    """One standard cell's physical characteristics."""

    name: str
    area_um2: float
    leakage_nw: float
    energy_fj: float
    delay_ps: float

    def __post_init__(self) -> None:
        for attribute in ("area_um2", "leakage_nw", "energy_fj", "delay_ps"):
            if getattr(self, attribute) < 0:
                raise ValueError(f"{attribute} of {self.name} must be non-negative")


class CellLibrary:
    """A named collection of cells with census-based rollups.

    A *census* is a mapping ``cell name -> instance count``; a *toggle
    ledger* maps ``cell name -> total output toggles`` observed during
    a simulated workload.
    """

    def __init__(self, name: str, cells: Mapping[str, Cell]) -> None:
        self.name = name
        self.cells: Dict[str, Cell] = dict(cells)

    def __getitem__(self, name: str) -> Cell:
        try:
            return self.cells[name]
        except KeyError:
            raise KeyError(
                f"cell {name!r} not in library {self.name!r}; "
                f"available: {sorted(self.cells)}"
            ) from None

    def __contains__(self, name: str) -> bool:
        return name in self.cells

    def area_um2(self, census: Mapping[str, int]) -> float:
        """Total placement area of a census."""
        return sum(self[c].area_um2 * n for c, n in census.items())

    def leakage_nw(self, census: Mapping[str, int]) -> float:
        """Total static power of a census."""
        return sum(self[c].leakage_nw * n for c, n in census.items())

    def dynamic_energy_fj(self, toggles: Mapping[str, float]) -> float:
        """Energy of a toggle ledger."""
        return sum(self[c].energy_fj * n for c, n in toggles.items())

    def delay_ps(self, cell: str, stages: int = 1) -> float:
        """Delay of ``stages`` series instances of ``cell``."""
        return self[cell].delay_ps * stages


#: Nangate-45nm-like typical-corner cells.
NANGATE45 = CellLibrary(
    "nangate45-like",
    {
        "INV_X1": Cell("INV_X1", 0.532, 12.0, 0.30, 11.0),
        "BUF_X2": Cell("BUF_X2", 0.798, 22.0, 0.55, 26.0),
        "NAND2_X1": Cell("NAND2_X1", 0.798, 18.0, 0.38, 14.0),
        "AND2_X1": Cell("AND2_X1", 1.064, 24.0, 0.52, 28.0),
        "OR2_X1": Cell("OR2_X1", 1.064, 24.0, 0.52, 29.0),
        "XOR2_X1": Cell("XOR2_X1", 1.596, 42.0, 0.95, 42.0),
        "MUX2_X1": Cell("MUX2_X1", 1.862, 33.0, 0.80, 36.0),
        "DFF_X1": Cell("DFF_X1", 4.522, 92.0, 1.80, 93.0),
        "CLKGATE_X1": Cell("CLKGATE_X1", 2.926, 46.0, 0.60, 38.0),
    },
)
