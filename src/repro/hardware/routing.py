"""Routing box: the statically-configured input shuffle network.

Each approximate single-output LUT starts with a routing box that
permutes the primary inputs ``X`` into ``X'`` so that the bound-set
bits land on the bound-table address pins (Fig. 1(b)).  We model it as
a full crossbar: one ``n:1`` mux per output pin, each built from
``n − 1`` MUX2 cells arranged ``ceil(log2 n)`` levels deep.

The select lines are static configuration, so dynamic activity is data
movement only: an input bit toggle propagates along the mux path of
every output pin it is routed to — ``ceil(log2 n)`` MUX2 output
toggles per routed bit flip.
"""

from __future__ import annotations

import math
from typing import Dict, Sequence

import numpy as np

from ..boolean import ops
from .netlist import Block, ToggleLedger, toggles_between

__all__ = ["RoutingBox"]


class RoutingBox(Block):
    """An ``n × n`` crossbar with a static permutation configuration.

    ``permutation[i]`` names the primary-input bit driven onto output
    pin ``i``.
    """

    def __init__(
        self, name: str, n_inputs: int, permutation: Sequence[int], library=None
    ) -> None:
        super().__init__(name, library)
        if n_inputs < 2:
            raise ValueError("routing box needs at least 2 inputs")
        permutation = ops.validate_positions(permutation, n_inputs)
        if len(permutation) != n_inputs:
            raise ValueError(
                f"permutation covers {len(permutation)} pins, expected {n_inputs}"
            )
        self.n_inputs = n_inputs
        self.permutation = permutation

    # ------------------------------------------------------------------
    @property
    def mux_depth(self) -> int:
        return math.ceil(math.log2(self.n_inputs))

    def census(self) -> Dict[str, int]:
        return {"MUX2_X1": self.n_inputs * (self.n_inputs - 1)}

    def critical_path_ps(self) -> float:
        return self.library.delay_ps("MUX2_X1", stages=self.mux_depth)

    # ------------------------------------------------------------------
    def route(self, words: np.ndarray) -> np.ndarray:
        """Apply the permutation: output bit i = input bit permutation[i]."""
        return ops.extract_bits(np.asarray(words, dtype=np.int64), self.permutation)

    def simulate(self, words: np.ndarray, ledger: ToggleLedger) -> np.ndarray:
        """Route a read sequence, charging path toggles to ``ledger``."""
        words = np.asarray(words, dtype=np.int64)
        routed = self.route(words)
        # Every routed bit flip ripples through the output pin's mux path.
        ledger.add("MUX2_X1", float(toggles_between(routed) * self.mux_depth))
        return routed
