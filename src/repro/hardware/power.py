"""Activity-based power/energy estimation.

Reproduces the paper's measurement protocol: "for each benchmark, we
measure the energy for 1024 read operations and record their average."
Dynamic energy comes from the exact per-cell toggle ledger produced by
the design's own simulation; leakage is the census leakage integrated
over the read window at a common clock period (the paper's equal-delay
synthesis constraint).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from .netlist import ToggleLedger

__all__ = ["EnergyReport", "measure_energy", "random_read_workload"]

#: common clock period (ns) applied to all designs, per the paper's
#: shared delay constraint during synthesis
DEFAULT_CLOCK_PERIOD_NS = 2.0

#: the paper's workload length
DEFAULT_N_READS = 1024


@dataclass
class EnergyReport:
    """Energy of one simulated read workload."""

    design_name: str
    n_reads: int
    dynamic_fj: float
    leakage_fj: float
    toggles: Dict[str, float]

    @property
    def total_fj(self) -> float:
        return self.dynamic_fj + self.leakage_fj

    @property
    def per_read_fj(self) -> float:
        return self.total_fj / self.n_reads if self.n_reads else 0.0

    def as_dict(self) -> dict:
        return {
            "design": self.design_name,
            "n_reads": self.n_reads,
            "dynamic_fj": self.dynamic_fj,
            "leakage_fj": self.leakage_fj,
            "total_fj": self.total_fj,
            "per_read_fj": self.per_read_fj,
        }

    def __repr__(self) -> str:
        return (
            f"EnergyReport({self.design_name!r}, reads={self.n_reads}, "
            f"per_read={self.per_read_fj:.1f} fJ)"
        )


def random_read_workload(
    n_inputs: int,
    n_reads: int = DEFAULT_N_READS,
    seed: Optional[int] = 0,
    p: Optional[np.ndarray] = None,
) -> np.ndarray:
    """Random input words for an energy measurement.

    Uniform by default (the paper's assumption); pass ``p`` to sample
    from a non-uniform input distribution.
    """
    rng = np.random.default_rng(seed)
    if p is None:
        return rng.integers(0, 1 << n_inputs, size=n_reads, dtype=np.int64)
    p = np.asarray(p, dtype=np.float64)
    return rng.choice(len(p), size=n_reads, p=p).astype(np.int64)


def measure_energy(
    design,
    words: Optional[np.ndarray] = None,
    n_reads: int = DEFAULT_N_READS,
    seed: Optional[int] = 0,
    clock_period_ns: float = DEFAULT_CLOCK_PERIOD_NS,
) -> EnergyReport:
    """Simulate a read workload on ``design`` and report its energy.

    Parameters
    ----------
    design:
        Any :class:`repro.hardware.architectures.Design`.
    words:
        Explicit input sequence; a fresh uniform-random workload of
        ``n_reads`` words is drawn when omitted.
    clock_period_ns:
        Cycle time used to integrate leakage (one read per cycle).
    """
    if words is None:
        words = random_read_workload(design.n_inputs, n_reads, seed)
    words = np.asarray(words, dtype=np.int64)
    ledger = ToggleLedger()
    design.simulate(words, ledger)
    dynamic_fj = ledger.energy_fj(design.library)
    # nW * ns = 1e-18 J = 1e-3 fJ
    leakage_fj = design.leakage_nw() * clock_period_ns * len(words) * 1e-3
    return EnergyReport(
        design_name=design.name,
        n_reads=len(words),
        dynamic_fj=dynamic_fj,
        leakage_fj=leakage_fj,
        toggles=ledger.as_dict(),
    )
