"""DFF-based LUT RAM with a mux-tree read port.

Matching the paper's implementation ("LUTs are implemented by RAMs
consisting of D flip-flops"), a ``2**n``-entry, ``width``-bit LUT is
modelled as:

* ``2**n · width`` storage DFFs (contents are static configuration),
* a binary mux tree per data bit — ``width · (2**n − 1)`` MUX2 cells,
  ``n`` levels deep — implementing the read port,
* address input buffers and a clock-distribution buffer tree.

Dynamic power of a read sequence is computed exactly: the value of
every mux-tree node is simulated for every read (all ``width`` bits
packed into one machine word per node) and output toggles between
consecutive reads are counted.  The per-cycle clock contribution is
every clocked element's internal toggle.  When the block is
clock-gated (the BTO mode and unused ND tables) it contributes no
dynamic energy at all — only leakage.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from .netlist import Block, ToggleLedger, toggles_between

__all__ = ["LutRam"]

#: clock / address buffer fanout used when sizing buffer trees
_BUFFER_FANOUT = 8

#: reads per simulation chunk (bounds peak memory of the node arrays)
_CHUNK = 128


class LutRam(Block):
    """A ``2**n_addr``-entry, ``width``-bit LUT RAM block.

    Parameters
    ----------
    name:
        Instance name used in reports and the Verilog emitter.
    n_addr:
        Address width; the table holds ``2**n_addr`` words.
    width:
        Data width of each word.
    contents:
        Integer array of shape ``(2**n_addr,)`` with values in
        ``[0, 2**width)``.
    """

    def __init__(
        self,
        name: str,
        n_addr: int,
        width: int,
        contents: np.ndarray,
        library=None,
    ) -> None:
        super().__init__(name, library)
        if n_addr < 1:
            raise ValueError("n_addr must be >= 1")
        if not 1 <= width <= 62:
            raise ValueError("width must be in [1, 62] (packed-word simulation)")
        contents = np.asarray(contents, dtype=np.int64)
        if contents.shape != (1 << n_addr,):
            raise ValueError(
                f"contents shape {contents.shape} != ({1 << n_addr},)"
            )
        if contents.min(initial=0) < 0 or contents.max(initial=0) >= (1 << width):
            raise ValueError(f"contents exceed {width}-bit range")
        self.n_addr = n_addr
        self.width = width
        self.contents = contents

    # ------------------------------------------------------------------
    @property
    def n_entries(self) -> int:
        return 1 << self.n_addr

    @property
    def n_dff(self) -> int:
        return self.n_entries * self.width

    @property
    def n_mux(self) -> int:
        return (self.n_entries - 1) * self.width

    def census(self) -> Dict[str, int]:
        clock_buffers = -(-self.n_dff // _BUFFER_FANOUT)  # ceil division
        return {
            "DFF_X1": self.n_dff,
            "MUX2_X1": self.n_mux,
            "BUF_X2": clock_buffers + self.n_addr,
        }

    def critical_path_ps(self) -> float:
        """Address-to-data delay: the mux-tree depth plus input buffer."""
        return self.library.delay_ps("BUF_X2") + self.library.delay_ps(
            "MUX2_X1", stages=self.n_addr
        )

    # ------------------------------------------------------------------
    def read(self, addresses: np.ndarray) -> np.ndarray:
        """Functional read (no power accounting)."""
        addresses = np.asarray(addresses, dtype=np.int64)
        if addresses.min(initial=0) < 0 or addresses.max(initial=0) >= self.n_entries:
            raise ValueError("address out of range")
        return self.contents[addresses]

    def simulate(
        self,
        addresses: np.ndarray,
        ledger: ToggleLedger,
        enabled: bool = True,
    ) -> np.ndarray:
        """Read a sequence of addresses, charging toggles to ``ledger``.

        Returns the output words.  A gated (``enabled=False``) block
        holds its output and contributes nothing dynamic; the returned
        words are still the functional reads so callers can assert the
        architecture-level output regardless of gating.
        """
        addresses = np.asarray(addresses, dtype=np.int64)
        outputs = self.read(addresses)
        if not enabled or len(addresses) == 0:
            return outputs

        cycles = len(addresses)
        census = self.census()
        # Clock network: one internal toggle per clocked element per cycle.
        ledger.add("DFF_X1", float(self.n_dff * cycles))
        ledger.add("BUF_X2", float(census["BUF_X2"] * cycles))
        # Address input activity.
        ledger.add("BUF_X2", float(toggles_between(addresses)))
        # Mux-tree activity, exact, chunked over the read sequence.
        ledger.add("MUX2_X1", float(self._mux_tree_toggles(addresses)))
        return outputs

    def _mux_tree_toggles(self, addresses: np.ndarray) -> int:
        """Exact toggle count over every mux-tree node.

        Processes the read sequence in overlapping chunks so that the
        node-value arrays stay small; chunks overlap by one read to
        count the toggles across chunk boundaries exactly once.
        """
        total = 0
        start = 0
        n_reads = len(addresses)
        while start < n_reads:
            stop = min(start + _CHUNK, n_reads)
            # include the previous read so boundary flips are counted
            lo = start - 1 if start > 0 else 0
            chunk = addresses[lo:stop]
            values = self.contents[:, None]
            for level in range(self.n_addr):
                bit = ((chunk >> level) & 1).astype(bool)
                values = np.where(bit[None, :], values[1::2], values[0::2])
                total += toggles_between(values)
            start = stop
        return total
