"""Structural netlist primitives: blocks, censuses, toggle ledgers.

A *block* is a structural unit (LUT RAM, routing box, output mux...)
that knows three things about itself:

1. its cell census (for area and leakage),
2. its pin-to-pin critical path (for timing), and
3. how many cell-output toggles a given read workload causes in it
   (for dynamic power).

Designs in :mod:`repro.hardware.architectures` are trees of blocks;
the area/timing/power engines walk those trees.
"""

from __future__ import annotations

from collections import Counter
from typing import Dict, Iterable, Mapping, Optional

import numpy as np

from .cells import CellLibrary, NANGATE45

__all__ = [
    "ToggleLedger",
    "Block",
    "Mux2Block",
    "ClockGateBlock",
    "merge_census",
    "popcount64",
    "toggles_between",
]

_BYTE_POPCOUNT = np.unpackbits(
    np.arange(256, dtype=np.uint8)[:, None], axis=1
).sum(axis=1).astype(np.int64)


def popcount64(words: np.ndarray) -> np.ndarray:
    """Per-element popcount of an int64/uint64 array (numpy-agnostic)."""
    words = np.ascontiguousarray(words, dtype=np.int64)
    if hasattr(np, "bitwise_count"):
        return np.bitwise_count(words).astype(np.int64)
    as_bytes = words.view(np.uint8).reshape(words.shape + (8,))
    return _BYTE_POPCOUNT[as_bytes].sum(axis=-1)


def toggles_between(values: np.ndarray) -> int:
    """Total bit toggles along a sequence of packed words.

    ``values`` has shape ``(reads,)`` or ``(nodes, reads)``; toggles
    are counted between consecutive reads on every bit of every node.
    """
    values = np.asarray(values, dtype=np.int64)
    if values.ndim == 1:
        values = values[None, :]
    if values.shape[-1] < 2:
        return 0
    flips = values[..., 1:] ^ values[..., :-1]
    return int(popcount64(flips).sum())


class ToggleLedger:
    """Accumulates output-toggle counts per cell type."""

    def __init__(self) -> None:
        self.counts: Counter = Counter()

    def add(self, cell: str, toggles: float) -> None:
        if toggles < 0:
            raise ValueError(f"negative toggle count for {cell}")
        self.counts[cell] += toggles

    def merge(self, other: "ToggleLedger") -> None:
        self.counts.update(other.counts)

    def total(self) -> float:
        return float(sum(self.counts.values()))

    def energy_fj(self, library: CellLibrary) -> float:
        return library.dynamic_energy_fj(self.counts)

    def as_dict(self) -> Dict[str, float]:
        return dict(self.counts)


def merge_census(censuses: Iterable[Mapping[str, int]]) -> Dict[str, int]:
    """Sum several cell censuses."""
    merged: Counter = Counter()
    for census in censuses:
        merged.update(census)
    return dict(merged)


class Block:
    """Base class of structural blocks."""

    def __init__(self, name: str, library: Optional[CellLibrary] = None) -> None:
        self.name = name
        self.library = library or NANGATE45

    # -- static views ---------------------------------------------------
    def census(self) -> Dict[str, int]:
        """Cell census of this block."""
        raise NotImplementedError

    def critical_path_ps(self) -> float:
        """Input-to-output propagation delay of this block."""
        raise NotImplementedError

    def area_um2(self) -> float:
        return self.library.area_um2(self.census())

    def leakage_nw(self) -> float:
        return self.library.leakage_nw(self.census())

    def __repr__(self) -> str:
        return f"{type(self).__name__}(name={self.name!r})"


class Mux2Block(Block):
    """A bank of 2:1 multiplexers (one per data bit)."""

    def __init__(self, name: str, width: int = 1, library=None) -> None:
        super().__init__(name, library)
        if width < 1:
            raise ValueError("width must be >= 1")
        self.width = width

    def census(self) -> Dict[str, int]:
        return {"MUX2_X1": self.width}

    def critical_path_ps(self) -> float:
        return self.library.delay_ps("MUX2_X1")

    def simulate(
        self,
        select: np.ndarray,
        value0: np.ndarray,
        value1: np.ndarray,
        ledger: ToggleLedger,
    ) -> np.ndarray:
        """Select per read; toggles counted on the mux outputs."""
        select = np.asarray(select).astype(bool)
        out = np.where(select, value1, value0)
        ledger.add("MUX2_X1", toggles_between(out.astype(np.int64)))
        return out


class ClockGateBlock(Block):
    """An integrated clock-gating cell controlling one block's clock.

    When the enable is static (our reconfigurable modes are configured
    once), the gate's own dynamic contribution is the gated clock pin:
    one toggle pair per cycle while enabled, none while gated.
    """

    def __init__(self, name: str, library=None) -> None:
        super().__init__(name, library)

    def census(self) -> Dict[str, int]:
        return {"CLKGATE_X1": 1}

    def critical_path_ps(self) -> float:
        return self.library.delay_ps("CLKGATE_X1")

    def simulate(self, cycles: int, enabled: bool, ledger: ToggleLedger) -> None:
        if enabled:
            ledger.add("CLKGATE_X1", float(cycles))
