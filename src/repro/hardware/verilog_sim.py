"""Netlist-level simulation of the emitted Verilog.

:mod:`repro.hardware.simulate` verifies *designs* (the structural
model); this module instead verifies the *emitted RTL text*: it parses
the Verilog produced by :func:`repro.hardware.verilog.emit_design`
together with its ``$readmemb`` memory images and evaluates the
netlist — wire concatenations, RAM lookups, mode multiplexers — for
given input words.  The golden-vector tests exhaustively compare this
against the Python :meth:`ApproximationResult.evaluate` reference, so
a wiring bug in the emitter (a swapped routing bit, a mis-addressed
free table, a wrong mode constant) fails loudly instead of surviving
until someone runs a real simulator.

Only the constructs the emitter produces are supported; anything else
raises :class:`RtlError`.  Evaluation is lazy, and reading the output
of a clock-gated (``en=1'b0``) RAM is an error — the emitted muxes
must never select a disabled RAM's output.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

import numpy as np

__all__ = ["RtlError", "RtlNetlist", "simulate_rtl", "simulate_design_rtl"]


class RtlError(ValueError):
    """The RTL text uses a construct this interpreter does not model."""


_MODULE_RE = re.compile(r"^module\s+(\w+)\s*\(", re.MULTILINE)
_INPUT_RE = re.compile(r"input\s+wire\s*(?:\[(\d+):0\])?\s+(\w+)")
_OUTPUT_RE = re.compile(r"output\s+wire\s*(?:\[(\d+):0\])?\s+(\w+)")
_WIRE_DEF_RE = re.compile(r"^wire\s*(?:\[(\d+):0\])?\s*(\w+)\s*=\s*(.+);$")
_WIRE_DECL_RE = re.compile(r"^wire\s*(?:\[(\d+):0\])?\s*(\w+)\s*;$")
_ASSIGN_RE = re.compile(r"^assign\s+(\w+)(?:\[(\d+)\])?\s*=\s*(.+);$")
_RAM_RE = re.compile(
    r"^alut_ram\s*#\(\s*\.AW\((\d+)\),\s*\.DW\((\d+)\),\s*"
    r"\.INIT\(\"([^\"]+)\"\)\s*\)\s*(\w+)\s*\(\s*\.clk\(clk\),\s*"
    r"\.en\(([^)]+)\),\s*\.addr\(([^)]+)\),\s*\.data\((\w+)\)\s*\);$"
)
_LITERAL_RE = re.compile(r"^(\d+)'([bd])([01_]+|\d+)$")
_BITSEL_RE = re.compile(r"^(\w+)\[(\d+)\]$")
_PARTSEL_RE = re.compile(r"^(\w+)\[(\d+):(\d+)\]$")


class _Ram:
    """One ``alut_ram`` instance: its memory image and port wiring."""

    __slots__ = ("aw", "dw", "enabled_expr", "addr_expr", "mem")

    def __init__(self, aw: int, dw: int, en: str, addr: str, image: str) -> None:
        self.aw = aw
        self.dw = dw
        self.enabled_expr = en.strip()
        self.addr_expr = addr.strip()
        rows = [line.strip() for line in image.splitlines() if line.strip()]
        if len(rows) != (1 << aw):
            raise RtlError(
                f"memory image has {len(rows)} rows, RAM expects {1 << aw}"
            )
        self.mem = [int(row, 2) for row in rows]


def _split_concat(body: str) -> List[str]:
    """Split a ``{a, b, ...}`` body at top-level commas."""
    parts, depth, current = [], 0, ""
    for char in body:
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
        if char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


def _split_ternary(expr: str) -> Optional[Tuple[str, str, str]]:
    """Split ``cond ? a : b`` at the top level, or None."""
    depth = 0
    for i, char in enumerate(expr):
        if char == "{":
            depth += 1
        elif char == "}":
            depth -= 1
        elif char == "?" and depth == 0:
            cond = expr[:i].strip()
            rest = expr[i + 1 :]
            colon_depth = 0
            for j, c in enumerate(rest):
                if c == "{":
                    colon_depth += 1
                elif c == "}":
                    colon_depth -= 1
                elif c == ":" and colon_depth == 0:
                    return cond, rest[:j].strip(), rest[j + 1 :].strip()
            raise RtlError(f"ternary without ':' in {expr!r}")
    return None


class RtlNetlist:
    """A parsed top module plus its memory images.

    ``evaluate(word)`` computes the combinational value of the output
    port for one input word — the steady-state value the registered
    RTL reaches after the pipeline fills, which is what the
    self-checking testbench samples.
    """

    def __init__(self, source: str, images: Dict[str, str]) -> None:
        match = _MODULE_RE.search(source)
        if match is None:
            raise RtlError("no module declaration found")
        self.module = match.group(1)
        body = source[match.start() : source.index("endmodule", match.start())]

        self.widths: Dict[str, int] = {}
        self.input_name, self.output_name = None, None
        for m in _INPUT_RE.finditer(body):
            width, name = (int(m.group(1) or 0) + 1), m.group(2)
            self.widths[name] = width
            if name != "clk":
                self.input_name = name
        for m in _OUTPUT_RE.finditer(body):
            self.output_name = m.group(2)
            self.widths[m.group(2)] = int(m.group(1) or 0) + 1
        if self.input_name is None or self.output_name is None:
            raise RtlError("module must have an input bus and an output bus")

        #: wire name -> defining expression
        self.defs: Dict[str, str] = {}
        #: output bit index -> expression (None key for whole-bus assign)
        self.out_bits: Dict[Optional[int], str] = {}
        #: data-wire name -> RAM instance
        self.rams: Dict[str, _Ram] = {}

        for raw in body.splitlines():
            line = raw.strip()
            if (
                not line
                or line.startswith("//")
                or line.startswith("module")
                or line.startswith("input")
                or line.startswith("output")
                or line == ");"
            ):
                continue
            m = _RAM_RE.match(line)
            if m:
                aw, dw, init, _, en, addr, data = m.groups()
                if init not in images:
                    raise RtlError(f"missing memory image {init!r}")
                self.rams[data] = _Ram(
                    int(aw), int(dw), en, addr, images[init]
                )
                self.widths[data] = int(dw)
                continue
            m = _WIRE_DEF_RE.match(line)
            if m:
                width, name, expr = m.groups()
                self.widths[name] = int(width or 0) + 1
                self.defs[name] = expr.strip()
                continue
            m = _WIRE_DECL_RE.match(line)
            if m:
                width, name = m.groups()
                self.widths[name] = int(width or 0) + 1
                continue
            m = _ASSIGN_RE.match(line)
            if m:
                target, bit, expr = m.groups()
                if target != self.output_name:
                    raise RtlError(f"assign to non-output {target!r}")
                self.out_bits[None if bit is None else int(bit)] = expr.strip()
                continue
            raise RtlError(f"unsupported RTL construct: {line!r}")

    # -- expression evaluation ----------------------------------------
    def _eval(self, expr: str, env: Dict[str, int]) -> Tuple[int, int]:
        """Evaluate ``expr`` to ``(value, width)`` for one input word."""
        expr = expr.strip()
        ternary = _split_ternary(expr)
        if ternary is not None:
            cond, then, other = ternary
            value, _ = self._eval(cond, env)
            return self._eval(then if value else other, env)
        if expr.startswith("{") and expr.endswith("}"):
            value, width = 0, 0
            for part in _split_concat(expr[1:-1]):
                pv, pw = self._eval(part, env)
                value = (value << pw) | pv
                width += pw
            return value, width
        m = _LITERAL_RE.match(expr)
        if m:
            width, base, digits = m.groups()
            value = int(digits.replace("_", ""), 2 if base == "b" else 10)
            return value, int(width)
        m = _BITSEL_RE.match(expr)
        if m:
            value, _ = self._resolve(m.group(1), env)
            return (value >> int(m.group(2))) & 1, 1
        m = _PARTSEL_RE.match(expr)
        if m:
            name, high, low = m.group(1), int(m.group(2)), int(m.group(3))
            value, _ = self._resolve(name, env)
            return (value >> low) & ((1 << (high - low + 1)) - 1), high - low + 1
        if re.fullmatch(r"\w+", expr):
            return self._resolve(expr, env)
        raise RtlError(f"unsupported expression: {expr!r}")

    def _resolve(self, name: str, env: Dict[str, int]) -> Tuple[int, int]:
        if name in env:
            return env[name], self.widths.get(name, 1)
        ram = self.rams.get(name)
        if ram is not None:
            enabled, _ = self._eval(ram.enabled_expr, env)
            if not enabled:
                raise RtlError(
                    f"value of clock-gated RAM output {name!r} was read"
                )
            addr, width = self._eval(ram.addr_expr, env)
            if width != ram.aw:
                raise RtlError(
                    f"address width {width} != AW {ram.aw} on RAM {name!r}"
                )
            value = ram.mem[addr]
            env[name] = value
            return value, ram.dw
        definition = self.defs.get(name)
        if definition is None:
            raise RtlError(f"undefined signal {name!r}")
        value, _ = self._eval(definition, env)
        env[name] = value
        return value, self.widths.get(name, 1)

    def evaluate(self, word: int) -> int:
        env: Dict[str, int] = {self.input_name: int(word), "clk": 0}
        if None in self.out_bits:
            value, _ = self._eval(self.out_bits[None], env)
            return value
        value = 0
        for bit, expr in self.out_bits.items():
            bit_value, _ = self._eval(expr, env)
            value |= (bit_value & 1) << bit
        return value


def simulate_rtl(
    source: str, images: Dict[str, str], words
) -> np.ndarray:
    """Evaluate the emitted netlist for the given input words."""
    netlist = RtlNetlist(source, images)
    return np.array(
        [netlist.evaluate(int(word)) for word in np.asarray(words).reshape(-1)],
        dtype=np.int64,
    )


def simulate_design_rtl(
    design, words, module_name: Optional[str] = None
) -> np.ndarray:
    """Emit a design's RTL + memories and simulate the emitted text."""
    from .verilog import emit_design, emit_memory_images

    return simulate_rtl(
        emit_design(design, module_name),
        emit_memory_images(design, module_name),
        words,
    )
